"""External peripheral models: sensors, radio, camera.

Peripherals are the subjects of the paper's re-execution semantics, so
the model keeps exactly the properties the semantics react to:

* every invocation costs *time* and *energy* (so redundant
  re-execution is measurable waste);
* sensor readings are **time-varying** (slow environmental drift plus
  read noise), so a re-executed read after a power failure generally
  returns a *different* value — the root cause of the unsafe-execution
  problem of Figure 2c, and the reason `Timely` freshness windows
  exist;
* the radio records every transmission, so duplicate sends caused by
  task re-execution are observable (the wasted-I/O metric);
* all peripherals are synchronous and arbitrarily restartable, the
  peripheral class EaseIO targets (section 6).

Peripherals carry no internal non-volatile state; their state across
power failures is exactly the environment they sample.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PeripheralError


@dataclass(frozen=True)
class IOResult:
    """Outcome of one peripheral invocation."""

    value: Optional[float]
    duration_us: float
    power_mw: float
    category: str

    @property
    def energy_uj(self) -> float:
        return self.power_mw * self.duration_us * 1e-3


class Peripheral:
    """Base class: a named synchronous operation with fixed cost."""

    def __init__(self, name: str, duration_us: float, power_mw: float) -> None:
        self.name = name
        self.duration_us = duration_us
        self.power_mw = power_mw
        self.invocations = 0

    def invoke(
        self, time_us: float, rng: np.random.Generator, args: Sequence[float]
    ) -> IOResult:
        self.invocations += 1
        value = self._sample(time_us, rng, args)
        return IOResult(
            value=value,
            duration_us=self.duration_us,
            power_mw=self.power_mw,
            category=self.name,
        )

    def _sample(
        self, time_us: float, rng: np.random.Generator, args: Sequence[float]
    ) -> Optional[float]:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget every invocation (machine recycling between runs)."""
        self.invocations = 0


class EnvironmentSensor(Peripheral):
    """A sensor sampling a drifting environmental signal.

    The signal is ``base + amplitude * sin(2*pi*t/period) + noise``.
    ``period_us`` controls how fast the environment moves: readings
    within a `Timely` freshness window are close; readings separated by
    a long dark period differ.
    """

    def __init__(
        self,
        name: str,
        duration_us: float,
        power_mw: float,
        base: float,
        amplitude: float,
        period_us: float,
        noise_std: float,
    ) -> None:
        super().__init__(name, duration_us, power_mw)
        self.base = base
        self.amplitude = amplitude
        self.period_us = period_us
        self.noise_std = noise_std

    def true_value(self, time_us: float) -> float:
        """The noiseless environmental signal at ``time_us``."""
        return self.base + self.amplitude * math.sin(
            2.0 * math.pi * time_us / self.period_us
        )

    def _sample(
        self, time_us: float, rng: np.random.Generator, args: Sequence[float]
    ) -> float:
        noise = rng.normal(0.0, self.noise_std) if self.noise_std > 0 else 0.0
        return self.true_value(time_us) + noise


class Radio(Peripheral):
    """A packet transmitter.

    ``args`` is the payload (a tuple of numbers).  Every transmission
    is appended to :attr:`transmissions`, which the evaluation reads to
    count duplicate sends and check payload freshness.
    """

    def __init__(
        self,
        name: str = "radio",
        duration_us: float = 2000.0,
        power_mw: float = 18.0,
        per_word_us: float = 50.0,
    ) -> None:
        super().__init__(name, duration_us, power_mw)
        self.per_word_us = per_word_us
        self.transmissions: List[Tuple[float, Tuple[float, ...]]] = []

    def reset(self) -> None:
        super().reset()
        self.transmissions.clear()

    def invoke(
        self, time_us: float, rng: np.random.Generator, args: Sequence[float]
    ) -> IOResult:
        self.invocations += 1
        payload = tuple(float(a) for a in args)
        self.transmissions.append((time_us, payload))
        duration = self.duration_us + self.per_word_us * len(payload)
        return IOResult(
            value=None, duration_us=duration, power_mw=self.power_mw, category=self.name
        )


class Camera(Peripheral):
    """An image-capture peripheral.

    The paper simulates capture with a delay loop on the MCU; we do the
    same but additionally return a scene luminance value derived from
    the (time-varying) environment so the DNN has a real input to
    classify.
    """

    def __init__(
        self,
        name: str = "camera",
        duration_us: float = 3000.0,
        power_mw: float = 6.0,
        scene_period_us: float = 400_000.0,
    ) -> None:
        super().__init__(name, duration_us, power_mw)
        self.scene_period_us = scene_period_us

    def _sample(
        self, time_us: float, rng: np.random.Generator, args: Sequence[float]
    ) -> float:
        # Luminance in [0, 255]; drifts with the scene and a little noise.
        phase = math.sin(2.0 * math.pi * time_us / self.scene_period_us)
        return float(np.clip(128.0 + 100.0 * phase + rng.normal(0, 2.0), 0, 255))


class DelayOp(Peripheral):
    """A pure time/energy sink (the paper's simulated transmitter)."""

    def _sample(
        self, time_us: float, rng: np.random.Generator, args: Sequence[float]
    ) -> None:
        return None


class PeripheralSet:
    """Registry of the peripherals attached to a machine."""

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ) -> None:
        self._peripherals: Dict[str, Peripheral] = {}
        if rng is None:
            rng = np.random.default_rng(seed if seed is not None else 0)
        self.rng = rng
        #: remembered so :meth:`reset` can restore the exact noise stream
        self._seed = seed
        #: the just-seeded generator state; :meth:`reset` rewinds to it
        #: in place instead of constructing a new generator (recycled
        #: machines reset hundreds of times per campaign)
        self._rng_state0 = (
            np.random.default_rng(seed).bit_generator.state
            if seed is not None
            else None
        )

    def attach(self, peripheral: Peripheral) -> Peripheral:
        if peripheral.name in self._peripherals:
            raise PeripheralError(f"peripheral {peripheral.name!r} already attached")
        self._peripherals[peripheral.name] = peripheral
        return peripheral

    def get(self, name: str) -> Peripheral:
        try:
            return self._peripherals[name]
        except KeyError:
            raise PeripheralError(
                f"unknown peripheral {name!r}; attached: {sorted(self._peripherals)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._peripherals

    def names(self) -> List[str]:
        return sorted(self._peripherals)

    def invoke(self, name: str, time_us: float, args: Sequence[float] = ()) -> IOResult:
        return self.get(name).invoke(time_us, self.rng, args)

    def reset(self) -> None:
        """Restore the set to its just-constructed state.

        Requires a known construction ``seed`` so the sensor-noise
        stream replays identically; raises otherwise rather than
        silently desynchronising recycled runs.
        """
        if self._seed is None:
            raise PeripheralError(
                "PeripheralSet.reset() needs the set to be built with seed=..."
            )
        self.rng.bit_generator.state = self._rng_state0
        for peripheral in self._peripherals.values():
            peripheral.reset()


def default_peripherals(seed: int = 0) -> PeripheralSet:
    """The peripheral complement used by the evaluation applications.

    Durations/powers are of MSP430-platform magnitude: sensors cost
    hundreds of microseconds at sub-mW power, the radio costs
    milliseconds at tens of mW.
    """
    periphs = PeripheralSet(seed=seed)
    periphs.attach(
        EnvironmentSensor(
            "temp",
            duration_us=600.0,
            power_mw=1.5,
            base=10.0,
            amplitude=6.0,
            period_us=300_000.0,
            noise_std=0.8,
        )
    )
    periphs.attach(
        EnvironmentSensor(
            "humidity",
            duration_us=800.0,
            power_mw=1.8,
            base=55.0,
            amplitude=20.0,
            period_us=500_000.0,
            noise_std=1.5,
        )
    )
    periphs.attach(
        EnvironmentSensor(
            "pressure",
            duration_us=700.0,
            power_mw=1.6,
            base=1013.0,
            amplitude=8.0,
            period_us=900_000.0,
            noise_std=0.5,
        )
    )
    periphs.attach(Radio("radio", duration_us=2800.0, power_mw=9.0, per_word_us=80.0))
    periphs.attach(Camera("camera", duration_us=8000.0, power_mw=6.0))
    periphs.attach(DelayOp("tx_sim", duration_us=1500.0, power_mw=4.0))
    return periphs
