"""Energy-harvesting sources.

The paper's real-world experiment (Figure 13) powers the MCU from a
Powercast TX91501-3W RF transmitter at 915 MHz through a P2110-EVB
receiver, varying the transmitter-to-device distance between 52 and 64
inches.  We model that link with a Friis free-space path-loss budget
plus rectifier efficiency: close enough, the harvested power exceeds
the MCU's draw and the application runs failure-free; with distance the
harvested power drops below the draw, the capacitor duty-cycles and
power failures appear — the qualitative shape Figure 13 reports.

A ``ConstantSupply`` covers the emulated-energy experiments, where
failures are injected by a timer rather than by energy exhaustion
(section 5.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ReproError

#: meters per inch
_INCH_M = 0.0254
#: speed of light, m/s
_C = 299_792_458.0


class HarvestSource:
    """Interface: instantaneous harvested power at a given time."""

    def power_mw(self, time_us: float) -> float:
        raise NotImplementedError


@dataclass
class ConstantSupply(HarvestSource):
    """A fixed harvesting power (or mains power when large)."""

    level_mw: float = 1000.0

    def __post_init__(self) -> None:
        if self.level_mw < 0:
            raise ReproError("supply power must be >= 0")

    def power_mw(self, time_us: float) -> float:
        return self.level_mw


class RFHarvester(HarvestSource):
    """Distance-dependent RF harvesting (Powercast-like link).

    Received power follows Friis:
    ``P_r = P_t * G_t * G_r * (lambda / (4 pi d))**2``
    and the rectifier converts a fraction ``efficiency`` of it.

    Parameters are calibrated so that at the paper's closest distance
    (52 in) the harvested power comfortably exceeds a low-power MCU
    draw, and at 64 in it falls below it.  An optional log-normal
    fading term models multipath variation over time.
    """

    def __init__(
        self,
        distance_inch: float,
        tx_power_w: float = 3.0,
        tx_gain: float = 4.0,
        rx_gain: float = 2.0,
        frequency_mhz: float = 915.0,
        efficiency: float = 0.55,
        fading_std_db: float = 0.0,
        fading_period_us: float = 50_000.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if distance_inch <= 0:
            raise ReproError("harvester distance must be positive")
        if not 0 < efficiency <= 1:
            raise ReproError("rectifier efficiency must be in (0, 1]")
        self.distance_inch = distance_inch
        self.tx_power_w = tx_power_w
        self.tx_gain = tx_gain
        self.rx_gain = rx_gain
        self.frequency_mhz = frequency_mhz
        self.efficiency = efficiency
        self.fading_std_db = fading_std_db
        self.fading_period_us = fading_period_us
        self._rng = rng if rng is not None else np.random.default_rng(7)
        self._fade_db = 0.0
        self._fade_until_us = -1.0

    @property
    def distance_m(self) -> float:
        return self.distance_inch * _INCH_M

    @property
    def wavelength_m(self) -> float:
        return _C / (self.frequency_mhz * 1e6)

    def mean_power_mw(self) -> float:
        """Friis link budget x rectifier efficiency, in milliwatts."""
        path = (self.wavelength_m / (4.0 * math.pi * self.distance_m)) ** 2
        received_w = self.tx_power_w * self.tx_gain * self.rx_gain * path
        return received_w * self.efficiency * 1e3

    def power_mw(self, time_us: float) -> float:
        power = self.mean_power_mw()
        if self.fading_std_db > 0:
            if time_us >= self._fade_until_us:
                self._fade_db = float(self._rng.normal(0.0, self.fading_std_db))
                self._fade_until_us = time_us + self.fading_period_us
            power *= 10.0 ** (self._fade_db / 10.0)
        return power
