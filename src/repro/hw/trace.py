"""Execution event trace.

Every observable hardware/runtime event — reboots, I/O operations, DMA
transfers, task commits, privatizations — is appended to a
:class:`Trace`.  The evaluation metrics of section 5.2 (wasted work,
re-executed I/O counts, power-failure counts, execution correctness)
are all derived from this log, and tests assert against it to check
*why* a result came out, not only *what* it was.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, NamedTuple, Optional, Tuple


# Event kinds, kept as plain strings so traces stay printable/greppable.
BOOT = "boot"                    # initial power-up or post-failure reboot
POWER_FAILURE = "power_failure"  # the lights went out
TASK_START = "task_start"        # a task attempt began
TASK_COMMIT = "task_commit"      # a task completed and committed
IO_EXEC = "io_exec"              # a peripheral operation actually ran
IO_SKIP = "io_skip"              # EaseIO skipped a completed operation
IO_SKIP_BLOCK = "io_skip_block"  # EaseIO skipped a whole valid I/O block
DMA_EXEC = "dma_exec"            # a DMA transfer ran
DMA_SKIP = "dma_skip"            # a DMA transfer was skipped (Single)
PRIVATIZE = "privatize"          # regional/task privatization executed
RESTORE = "restore"              # privatized state restored after reboot
PROGRAM_DONE = "program_done"    # the application reached its end

EVENT_KINDS = (
    BOOT,
    POWER_FAILURE,
    TASK_START,
    TASK_COMMIT,
    IO_EXEC,
    IO_SKIP,
    IO_SKIP_BLOCK,
    DMA_EXEC,
    DMA_SKIP,
    PRIVATIZE,
    RESTORE,
    PROGRAM_DONE,
)


@dataclass(frozen=True, slots=True)
class Event:
    """One trace record.

    ``detail`` carries event-specific fields: the I/O function name and
    its call site for ``io_exec``, source/destination addresses for
    ``dma_exec``, the task name for task events, and so on.

    ``slots=True`` matters: bulk experiments emit millions of events,
    and a slotted record is both smaller and faster to allocate than a
    ``__dict__``-backed one.
    """

    time_us: float
    kind: str
    detail: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - debug aid
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time_us:12.1f}us] {self.kind:14s} {extras}"


class FailureRecord(NamedTuple):
    """Always-on record of one power failure.

    Kept even when event storage is disabled (one small tuple per
    failure, never per step): the correctness checker's atomicity-window
    exemption needs to know how long after the last executed I/O each
    failure landed, and the task/step-category attribution would
    otherwise be lost in counter-only bulk runs.
    """

    time_us: float
    task: Optional[str]
    step_category: Optional[str]
    #: time since the last ``io_exec`` event (+inf when none preceded)
    since_io_us: float


class Trace:
    """An append-only event log with simple query helpers."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: List[Event] = []
        self._counts: Dict[str, int] = {}
        #: power failures with task/category/io-distance detail; always
        #: maintained, bounded by the failure count (see FailureRecord)
        self.failures: List[FailureRecord] = []
        self._last_io_us = -math.inf
        #: optional observability hook (duck-typed: anything with an
        #: ``on_event(time_us, kind, detail)`` method, normally a
        #: :class:`repro.obs.metrics.RunRecorder`); survives clear() so
        #: pooled machines keep their attachment across resets — the
        #: run facade re-assigns it per run
        self.recorder = None

    def emit(self, time_us: float, kind: str, **detail: object) -> None:
        """Record an event.

        Aggregate counters (including the ``repeat`` sub-count and,
        when the emitter attaches ``semantic``/``forced``/``nbytes``
        detail, sub-counts like ``io_exec:Single:repeat``,
        ``dma_exec:forced`` and byte totals like ``privatize:nbytes``)
        are maintained even when full event storage is disabled, so
        metrics and the correctness checker's counter-mode verdicts
        stay available for bulk experiment runs.
        """
        # try/except increments: the hit case (every occurrence after
        # the first) is branch-free under zero-cost exceptions, and emit
        # is the single hottest shared call of a bulk campaign
        counts = self._counts
        try:
            counts[kind] += 1
        except KeyError:
            counts[kind] = 1
        dget = detail.get
        repeat = dget("repeat")
        if repeat:
            repeat_key = kind + ":repeat"
            try:
                counts[repeat_key] += 1
            except KeyError:
                counts[repeat_key] = 1
        semantic = dget("semantic")
        if semantic is not None:
            sem_key = f"{kind}:{semantic}"
            try:
                counts[sem_key] += 1
            except KeyError:
                counts[sem_key] = 1
            if repeat:
                sem_repeat_key = sem_key + ":repeat"
                try:
                    counts[sem_repeat_key] += 1
                except KeyError:
                    counts[sem_repeat_key] = 1
        if dget("forced"):
            forced_key = kind + ":forced"
            try:
                counts[forced_key] += 1
            except KeyError:
                counts[forced_key] = 1
        nbytes = dget("nbytes")
        if nbytes is not None:
            nbytes_key = kind + ":nbytes"
            try:
                counts[nbytes_key] += nbytes
            except KeyError:
                counts[nbytes_key] = nbytes
        if kind == IO_EXEC:
            self._last_io_us = time_us
        elif kind == POWER_FAILURE:
            self.failures.append(FailureRecord(
                time_us,
                detail.get("task"),  # type: ignore[arg-type]
                detail.get("step_category"),  # type: ignore[arg-type]
                time_us - self._last_io_us,
            ))
        recorder = self.recorder
        if recorder is not None:
            recorder.on_event(time_us, kind, detail)
        if self.enabled:
            # lazy-detail path: when event storage is off, no Event
            # object is ever allocated — counters above are the only
            # footprint of a ``trace_events=False`` run
            self.events.append(Event(time_us, kind, detail))

    def count(self, kind: str) -> int:
        """How many events of ``kind`` were emitted (works even when
        full event storage is disabled)."""
        return self._counts.get(kind, 0)

    def counts(self) -> Dict[str, int]:
        """The full aggregate-counter mapping (do not mutate)."""
        return self._counts

    def of_kind(self, kind: str) -> List[Event]:
        return [e for e in self.events if e.kind == kind]

    def where(self, predicate: Callable[[Event], bool]) -> List[Event]:
        return [e for e in self.events if predicate(e)]

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        # ``recorder`` deliberately survives: pooled machines are
        # cleared on reuse and the run facade re-assigns the hook per
        # run, so a stale recorder never observes a new run.
        self.events.clear()
        self._counts.clear()
        self.failures.clear()
        self._last_io_us = -math.inf

    # -- derived queries used by the metrics layer -------------------------

    def io_executions(self, func: Optional[str] = None) -> List[Event]:
        """All executed I/O operations, optionally for one function."""
        events = self.of_kind(IO_EXEC)
        if func is not None:
            events = [e for e in events if e.detail.get("func") == func]
        return events

    def io_reexecutions(self) -> int:
        """Number of I/O executions that were *repeats*.

        An execution is a repeat when the same call site (task instance
        + site id) already executed in an earlier attempt; the
        interpreter marks these with ``repeat=True``.
        """
        return self.count(f"{IO_EXEC}:repeat")

    def dma_reexecutions(self) -> int:
        return self.count(f"{DMA_EXEC}:repeat")

    def power_failures(self) -> int:
        return self.count(POWER_FAILURE)

    def last(self, kind: str) -> Optional[Event]:
        for event in reversed(self.events):
            if event.kind == kind:
                return event
        return None

    def format(self, limit: Optional[int] = None) -> str:
        """Human-readable dump (for debugging failed tests)."""
        rows = self.events if limit is None else self.events[-limit:]
        return "\n".join(str(e) for e in rows)
