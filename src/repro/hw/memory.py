"""Byte-addressed memory model of an FRAM-enabled microcontroller.

The simulated machine mirrors the TI MSP430FR5994 used by the paper:

* **SRAM** — volatile working memory.  Its contents are lost on every
  power failure.
* **LEA-RAM** — the volatile scratch memory of the Low Energy
  Accelerator.  On the real chip this is the upper half of SRAM; we
  model it as its own region so DMA transfers into the accelerator are
  visible in traces.
* **FRAM** — byte-addressable non-volatile memory.  Contents survive
  power failures.  All task-shared program state, runtime flags and
  privatization buffers live here.

Three layers are provided:

``MemoryRegion``
    a contiguous byte range with volatile/non-volatile behaviour and a
    reboot hook (``power_cycle``).

``AddressSpace``
    routes absolute addresses to regions; this is what the DMA engine
    and the EaseIO runtime query to classify an address as volatile or
    non-volatile (section 4.3 of the paper resolves DMA re-execution
    semantics from exactly this classification).

``RegionAllocator`` / typed views (``Cell``, ``ArrayCell``)
    a bump allocator with a symbol table, used by runtimes to place
    named program variables, lock flags, timestamps, and privatization
    buffers; it tracks a high-water mark so the Table 6 memory-overhead
    experiment can report RAM/FRAM usage per runtime.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro import fastpath
from repro.errors import AllocationError, MemoryAccessError, MemoryMapError

#: Default memory map (bases and sizes, in bytes).  The bases follow the
#: MSP430FR5994 datasheet loosely; only their relative classification
#: (volatile vs non-volatile) matters for the simulation.
SRAM_BASE = 0x1C00
SRAM_SIZE = 4 * 1024
LEARAM_BASE = 0x2C00
LEARAM_SIZE = 4 * 1024
FRAM_BASE = 0x10000
FRAM_SIZE = 256 * 1024


class MemoryRegion:
    """A contiguous, byte-addressed memory range.

    Parameters
    ----------
    name:
        human-readable region name (``"sram"``, ``"fram"``...).
    base:
        absolute address of the first byte.
    size:
        number of bytes.
    volatile:
        if true the region loses its contents on ``power_cycle``.
    decay_to:
        byte value volatile contents decay to on power loss.  Real SRAM
        decays to an unpredictable pattern; zero is the common model and
        keeps failures deterministic.  Tests can pick another value to
        prove that nothing relies on "convenient" zeroed garbage.
    """

    def __init__(
        self,
        name: str,
        base: int,
        size: int,
        volatile: bool,
        decay_to: int = 0,
    ) -> None:
        if size <= 0:
            raise MemoryMapError(f"region {name!r}: size must be positive, got {size}")
        if base < 0:
            raise MemoryMapError(f"region {name!r}: base must be >= 0, got {base}")
        if not 0 <= decay_to <= 0xFF:
            raise MemoryMapError(f"region {name!r}: decay_to must be a byte value")
        self.name = name
        self.base = base
        self.size = size
        self.volatile = volatile
        self.decay_to = decay_to
        self._buf = np.zeros(size, dtype=np.uint8)
        #: number of power cycles this region went through
        self.power_cycles = 0

    # -- address helpers -------------------------------------------------

    @property
    def end(self) -> int:
        """One past the last valid absolute address."""
        return self.base + self.size

    def contains(self, addr: int, nbytes: int = 1) -> bool:
        """Whether ``[addr, addr + nbytes)`` lies fully inside the region."""
        return self.base <= addr and addr + nbytes <= self.end

    def _offset(self, addr: int, nbytes: int) -> int:
        if not self.contains(addr, nbytes):
            raise MemoryAccessError(
                f"access [{addr:#x}, {addr + nbytes:#x}) outside region "
                f"{self.name!r} [{self.base:#x}, {self.end:#x})"
            )
        return addr - self.base

    # -- raw byte access --------------------------------------------------

    def read(self, addr: int, nbytes: int) -> bytes:
        """Read ``nbytes`` starting at absolute address ``addr``."""
        off = self._offset(addr, nbytes)
        return self._buf[off : off + nbytes].tobytes()

    def write(self, addr: int, data) -> None:
        """Write ``data`` starting at absolute address ``addr``.

        Accepts any object exposing the buffer protocol (``bytes``,
        ``bytearray``, ``memoryview``, a contiguous ``ndarray``) and
        copies it into the backing store exactly once.
        """
        arr = np.frombuffer(data, dtype=np.uint8)
        off = self._offset(addr, arr.size)
        self._buf[off : off + arr.size] = arr

    def view(self, addr: int, nbytes: int) -> np.ndarray:
        """A mutable uint8 view of ``[addr, addr + nbytes)``.

        Views alias the backing store: writing through a view is a
        memory write.  Used by typed cells for zero-copy access.
        """
        off = self._offset(addr, nbytes)
        return self._buf[off : off + nbytes]

    def fill(self, value: int = 0) -> None:
        """Set every byte of the region to ``value``."""
        self._buf[:] = value

    # -- power behaviour --------------------------------------------------

    def power_cycle(self) -> None:
        """Model a power failure: volatile regions lose their contents."""
        self.power_cycles += 1
        if self.volatile:
            self._buf[:] = self.decay_to

    def snapshot(self) -> bytes:
        """Copy of the full region contents (for test assertions)."""
        return self._buf.tobytes()

    def restore(self, snap: bytes) -> None:
        """Restore a snapshot taken with :meth:`snapshot`."""
        if len(snap) != self.size:
            raise MemoryAccessError(
                f"snapshot size {len(snap)} != region size {self.size}"
            )
        self._buf[:] = np.frombuffer(snap, dtype=np.uint8)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "volatile" if self.volatile else "non-volatile"
        return (
            f"MemoryRegion({self.name!r}, base={self.base:#x}, "
            f"size={self.size}, {kind})"
        )


class AddressSpace:
    """The machine's flat address space: a set of non-overlapping regions.

    The EaseIO runtime classifies DMA source/destination addresses
    through :meth:`is_nonvolatile`; that classification drives the DMA
    re-execution semantics of section 4.3.
    """

    def __init__(self) -> None:
        self._regions: List[MemoryRegion] = []
        #: sorted region bases, kept in lockstep with ``_regions`` for
        #: the O(log n) ``region_of`` dispatch
        self._bases: List[int] = []

    def add_region(self, region: MemoryRegion) -> MemoryRegion:
        """Register ``region``; rejects overlaps with existing regions."""
        for other in self._regions:
            if region.base < other.end and other.base < region.end:
                raise MemoryMapError(
                    f"region {region.name!r} [{region.base:#x}, {region.end:#x}) "
                    f"overlaps {other.name!r} [{other.base:#x}, {other.end:#x})"
                )
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.base)
        self._bases = [r.base for r in self._regions]
        return region

    def __iter__(self) -> Iterator[MemoryRegion]:
        return iter(self._regions)

    def region_of(self, addr: int, nbytes: int = 1) -> MemoryRegion:
        """The region fully containing ``[addr, addr + nbytes)``.

        Regions are disjoint and sorted, so the candidate is the one
        with the greatest base <= addr (binary search, not a scan).
        """
        i = bisect_right(self._bases, addr) - 1
        if i >= 0:
            region = self._regions[i]
            if addr + nbytes <= region.end:
                return region
        raise MemoryAccessError(
            f"no region maps [{addr:#x}, {addr + nbytes:#x})"
        )

    def region(self, name: str) -> MemoryRegion:
        """Look a region up by name."""
        for r in self._regions:
            if r.name == name:
                return r
        raise MemoryMapError(f"no region named {name!r}")

    def is_nonvolatile(self, addr: int, nbytes: int = 1) -> bool:
        """True if the addressed bytes survive a power failure."""
        return not self.region_of(addr, nbytes).volatile

    def read(self, addr: int, nbytes: int) -> bytes:
        return self.region_of(addr, nbytes).read(addr, nbytes)

    def write(self, addr: int, data: bytes) -> None:
        self.region_of(addr, len(data)).write(addr, data)

    def view(self, addr: int, nbytes: int) -> np.ndarray:
        return self.region_of(addr, nbytes).view(addr, nbytes)

    def power_cycle(self) -> None:
        """Propagate a power failure to every region."""
        for region in self._regions:
            region.power_cycle()

    def reset(self) -> None:
        """Return every region (including FRAM) to all-zero bytes.

        Used by :meth:`repro.hw.mcu.Machine.reset` to recycle a machine
        between runs.  Regions are zeroed *in place* so cached
        zero-copy views stay valid.
        """
        for region in self._regions:
            region.fill(0)
            region.power_cycles = 0


def default_address_space(
    sram_size: int = SRAM_SIZE,
    learam_size: int = LEARAM_SIZE,
    fram_size: int = FRAM_SIZE,
) -> AddressSpace:
    """Build the MSP430FR5994-like memory map used across the package."""
    space = AddressSpace()
    space.add_region(MemoryRegion("sram", SRAM_BASE, sram_size, volatile=True))
    space.add_region(MemoryRegion("learam", LEARAM_BASE, learam_size, volatile=True))
    space.add_region(MemoryRegion("fram", FRAM_BASE, fram_size, volatile=False))
    return space


# ---------------------------------------------------------------------------
# Typed access on top of raw regions
# ---------------------------------------------------------------------------

#: dtypes a program variable may take.  int16 matches the native MSP430
#: word; int32/float32 appear in the DNN workloads.
SUPPORTED_DTYPES: Tuple[str, ...] = ("int16", "int32", "int64", "float32", "float64", "uint8")


def _wrap_store(value, dtype: np.dtype):
    """Two's-complement wrap of an out-of-range integer store.

    An MCU move instruction keeps the low bits of the register; numpy
    2.x instead raises ``OverflowError`` for out-of-bounds Python
    ints.  Wrapping identically on every store path keeps the
    continuous-power oracle and the intermittent runtimes bit-exact on
    overflowing arithmetic.
    """
    if dtype.kind in "iu":
        bits = dtype.itemsize * 8
        iv = int(value) & ((1 << bits) - 1)
        if dtype.kind == "i" and iv >= 1 << (bits - 1):
            iv -= 1 << bits
        return iv
    return value


def _check_dtype(dtype: str) -> np.dtype:
    if dtype not in SUPPORTED_DTYPES:
        raise AllocationError(
            f"unsupported dtype {dtype!r}; expected one of {SUPPORTED_DTYPES}"
        )
    return np.dtype(dtype)


@dataclass(frozen=True)
class Symbol:
    """An allocated, named variable: its placement and shape."""

    name: str
    addr: int
    dtype: str
    length: int  # number of elements; 1 for scalars

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize) * self.length


class Cell:
    """Typed scalar access to one allocated slot.

    Reads/writes go straight through the backing region, so the value
    is subject to the region's power-failure behaviour.

    On the fast path the cell resolves its region **once** at
    construction and keeps a typed ndarray view aliasing the backing
    store — every ``get``/``set`` is then a single element access with
    no region scan and no bytes round-trip.  The view stays valid for
    the machine's lifetime because regions mutate their buffer only in
    place (``power_cycle``/``fill``/``restore`` never reallocate).
    """

    __slots__ = ("_space", "symbol", "_dtype", "_view")

    def __init__(self, space: AddressSpace, symbol: Symbol) -> None:
        if symbol.length != 1:
            raise AllocationError(f"{symbol.name!r} is an array; use ArrayCell")
        self._space = space
        self.symbol = symbol
        self._dtype = _check_dtype(symbol.dtype)
        self._view: Optional[np.ndarray] = None
        if fastpath.enabled():
            region = space.region_of(symbol.addr, self._dtype.itemsize)
            self._view = region.view(
                symbol.addr, self._dtype.itemsize
            ).view(self._dtype)

    @property
    def addr(self) -> int:
        return self.symbol.addr

    def get(self):
        view = self._view
        if view is not None:
            # ndarray.item(i) skips the intermediate numpy scalar
            return view.item(0)
        raw = self._space.read(self.symbol.addr, self._dtype.itemsize)
        return np.frombuffer(raw, dtype=self._dtype)[0].item()

    def set(self, value) -> None:
        view = self._view
        if view is not None:
            try:
                view[0] = value
            except OverflowError:
                view[0] = _wrap_store(value, self._dtype)
            return
        try:
            arr = np.asarray([value], dtype=self._dtype)
        except OverflowError:
            arr = np.asarray(
                [_wrap_store(value, self._dtype)], dtype=self._dtype
            )
        self._space.write(self.symbol.addr, arr.tobytes())


class ArrayCell:
    """Typed array access to an allocated slot.

    Fast-path construction caches a typed region-local view (see
    :class:`Cell`); element access stays bounds-checked.
    """

    __slots__ = ("_space", "symbol", "_dtype", "_view")

    def __init__(self, space: AddressSpace, symbol: Symbol) -> None:
        self._space = space
        self.symbol = symbol
        self._dtype = _check_dtype(symbol.dtype)
        self._view: Optional[np.ndarray] = None
        if fastpath.enabled():
            region = space.region_of(symbol.addr, symbol.nbytes)
            self._view = region.view(symbol.addr, symbol.nbytes).view(self._dtype)

    @property
    def addr(self) -> int:
        return self.symbol.addr

    def __len__(self) -> int:
        return self.symbol.length

    def element_addr(self, index: int) -> int:
        """Absolute address of element ``index`` (bounds-checked)."""
        if not 0 <= index < self.symbol.length:
            raise MemoryAccessError(
                f"{self.symbol.name}[{index}] out of bounds "
                f"(length {self.symbol.length})"
            )
        return self.symbol.addr + index * self._dtype.itemsize

    def get(self, index: int):
        view = self._view
        if view is not None:
            index = int(index)
            if not 0 <= index < self.symbol.length:
                raise MemoryAccessError(
                    f"{self.symbol.name}[{index}] out of bounds "
                    f"(length {self.symbol.length})"
                )
            return view.item(index)
        raw = self._space.read(self.element_addr(index), self._dtype.itemsize)
        return np.frombuffer(raw, dtype=self._dtype)[0].item()

    def set(self, index: int, value) -> None:
        view = self._view
        if view is not None:
            index = int(index)
            if not 0 <= index < self.symbol.length:
                raise MemoryAccessError(
                    f"{self.symbol.name}[{index}] out of bounds "
                    f"(length {self.symbol.length})"
                )
            try:
                view[index] = value
            except OverflowError:
                view[index] = _wrap_store(value, self._dtype)
            return
        try:
            arr = np.asarray([value], dtype=self._dtype)
        except OverflowError:
            arr = np.asarray(
                [_wrap_store(value, self._dtype)], dtype=self._dtype
            )
        self._space.write(self.element_addr(index), arr.tobytes())

    def to_numpy(self) -> np.ndarray:
        """Copy of the whole array as a numpy vector."""
        if self._view is not None:
            return self._view.copy()
        raw = self._space.read(self.symbol.addr, self.symbol.nbytes)
        return np.frombuffer(raw, dtype=self._dtype).copy()

    def load(self, values) -> None:
        """Bulk-store ``values`` (must match the symbol's length)."""
        arr = np.asarray(values, dtype=self._dtype)
        if arr.size != self.symbol.length:
            raise MemoryAccessError(
                f"loading {arr.size} values into {self.symbol.name!r} "
                f"of length {self.symbol.length}"
            )
        if self._view is not None:
            self._view[:] = arr.ravel()
            return
        self._space.write(self.symbol.addr, arr.tobytes())

    def slice(self, offset: int, length: int) -> "ArrayCell":
        """A typed view of ``length`` elements starting at ``offset``.

        The view aliases the same memory (same region, same power
        behaviour); used for windowed accelerator operations.
        """
        if offset < 0 or length <= 0 or offset + length > self.symbol.length:
            raise MemoryAccessError(
                f"slice [{offset}, {offset + length}) out of bounds for "
                f"{self.symbol.name!r} (length {self.symbol.length})"
            )
        sub = Symbol(
            name=f"{self.symbol.name}[{offset}:{offset + length}]",
            addr=self.symbol.addr + offset * self._dtype.itemsize,
            dtype=self.symbol.dtype,
            length=length,
        )
        return ArrayCell(self._space, sub)


@dataclass
class RegionAllocator:
    """Bump allocator with a symbol table over one region.

    Alignment follows the element size (natural alignment).  The
    allocator never frees: embedded runtimes place program state
    statically, and the high-water mark doubles as the memory-footprint
    figure reported in the Table 6 experiment.
    """

    space: AddressSpace
    region_name: str
    _cursor: int = field(default=-1)
    symbols: Dict[str, Symbol] = field(default_factory=dict)
    #: fast-path memoization: one typed cell object per symbol, so the
    #: per-access cost is a dict hit instead of a Cell construction
    _cells: Dict[str, "Cell"] = field(default_factory=dict, repr=False)
    _arrays: Dict[str, "ArrayCell"] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        region = self.space.region(self.region_name)
        if self._cursor < 0:
            self._cursor = region.base

    @property
    def region(self) -> MemoryRegion:
        return self.space.region(self.region_name)

    @property
    def used_bytes(self) -> int:
        """High-water mark: bytes allocated so far."""
        return self._cursor - self.region.base

    @property
    def free_bytes(self) -> int:
        return self.region.end - self._cursor

    def _align(self, alignment: int) -> None:
        rem = self._cursor % alignment
        if rem:
            self._cursor += alignment - rem

    def alloc(self, name: str, dtype: str, length: int = 1) -> Symbol:
        """Allocate ``length`` elements of ``dtype`` under ``name``."""
        if name in self.symbols:
            raise AllocationError(
                f"symbol {name!r} already allocated in {self.region_name}"
            )
        if length <= 0:
            raise AllocationError(f"symbol {name!r}: length must be positive")
        dt = _check_dtype(dtype)
        self._align(dt.itemsize)
        nbytes = dt.itemsize * length
        if self._cursor + nbytes > self.region.end:
            raise AllocationError(
                f"out of {self.region_name} memory allocating {name!r} "
                f"({nbytes} bytes; {self.free_bytes} free)"
            )
        sym = Symbol(name=name, addr=self._cursor, dtype=dtype, length=length)
        self._cursor += nbytes
        self.symbols[name] = sym
        return sym

    def lookup(self, name: str) -> Symbol:
        try:
            return self.symbols[name]
        except KeyError:
            raise AllocationError(
                f"unknown symbol {name!r} in region {self.region_name}"
            ) from None

    def cell(self, name: str) -> Cell:
        if fastpath.enabled():
            cell = self._cells.get(name)
            if cell is None:
                cell = self._cells[name] = Cell(self.space, self.lookup(name))
            return cell
        return Cell(self.space, self.lookup(name))

    def array(self, name: str) -> ArrayCell:
        if fastpath.enabled():
            arr = self._arrays.get(name)
            if arr is None:
                arr = self._arrays[name] = ArrayCell(self.space, self.lookup(name))
            return arr
        return ArrayCell(self.space, self.lookup(name))

    def cell_for(self, symbol: Symbol) -> Cell:
        return Cell(self.space, symbol)

    def array_for(self, symbol: Symbol) -> ArrayCell:
        return ArrayCell(self.space, symbol)
