"""Hardware substrate: a simulated MSP430FR5994-class batteryless board.

Sub-modules:

- :mod:`repro.hw.memory` — SRAM/LEA-RAM/FRAM address space, allocators
- :mod:`repro.hw.mcu` — clock, cost model, machine assembly
- :mod:`repro.hw.dma` — CPU-bypassing block-copy engine
- :mod:`repro.hw.lea` — vector accelerator (FIR/conv/FC kernels)
- :mod:`repro.hw.peripherals` — sensors, radio, camera models
- :mod:`repro.hw.timekeeper` — persistent time across power failures
- :mod:`repro.hw.energy` — capacitor buffer and energy metering
- :mod:`repro.hw.harvester` — RF/constant harvesting sources
- :mod:`repro.hw.trace` — execution event log
"""

from repro.hw.dma import DMAEngine, TransferClass, TransferReport
from repro.hw.energy import Capacitor, EnergyMeter
from repro.hw.harvester import ConstantSupply, HarvestSource, RFHarvester
from repro.hw.lea import LEA, LeaReport
from repro.hw.memory import (
    AddressSpace,
    ArrayCell,
    Cell,
    MemoryRegion,
    RegionAllocator,
    Symbol,
    default_address_space,
)
from repro.hw.mcu import Clock, CostModel, Machine, build_machine
from repro.hw.peripherals import (
    Camera,
    DelayOp,
    EnvironmentSensor,
    IOResult,
    Peripheral,
    PeripheralSet,
    Radio,
    default_peripherals,
)
from repro.hw.timekeeper import PersistentTimekeeper
from repro.hw.trace import Event, Trace

__all__ = [
    "AddressSpace",
    "ArrayCell",
    "Camera",
    "Capacitor",
    "Cell",
    "Clock",
    "ConstantSupply",
    "CostModel",
    "DMAEngine",
    "DelayOp",
    "EnergyMeter",
    "EnvironmentSensor",
    "Event",
    "HarvestSource",
    "IOResult",
    "LEA",
    "LeaReport",
    "Machine",
    "MemoryRegion",
    "Peripheral",
    "PeripheralSet",
    "PersistentTimekeeper",
    "RFHarvester",
    "Radio",
    "RegionAllocator",
    "Symbol",
    "Trace",
    "TransferClass",
    "TransferReport",
    "build_machine",
    "default_address_space",
    "default_peripherals",
]
