"""Energy storage and consumption accounting.

Batteryless platforms buffer harvested energy in a small capacitor and
die when the buffered energy is exhausted (Figure 1 of the paper).  Two
pieces live here:

``Capacitor``
    the energy buffer: a capacitance charged towards a supply voltage
    and discharged by the MCU's activity.  Execution is possible while
    the capacitor voltage stays above the *off* threshold; after a
    failure the device stays dark until the voltage recovers to the
    *on* threshold (hysteresis).  The paper's real-world experiment
    (Figure 13) uses a 1 mF capacitor charged over RF; the defaults
    mirror that setup.

``EnergyMeter``
    per-category consumption bookkeeping (CPU, FRAM, DMA, LEA, each
    peripheral...).  The evaluation metric "Energy Consumption"
    (section 5.2) is read from this meter.

Units: time in microseconds, power in milliwatts, energy in
microjoules.  1 mW x 1 us = 1e-3 uJ, hence the 1e-3 factor in
conversions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ReproError


def power_time_to_energy_uj(power_mw: float, duration_us: float) -> float:
    """Convert a (power, duration) pair to energy in microjoules."""
    return power_mw * duration_us * 1e-3


@dataclass
class Capacitor:
    """An energy-buffer capacitor with turn-on/turn-off hysteresis.

    Parameters
    ----------
    capacitance_f:
        capacitance in farads (paper: 1 mF).
    v_max:
        the voltage the harvester charges towards.
    v_on:
        voltage at which a dark device boots again.
    v_off:
        voltage below which the device browns out.
    """

    capacitance_f: float = 1e-3
    v_max: float = 3.3
    v_on: float = 2.8
    v_off: float = 1.8
    voltage: float = field(default=-1.0)

    def __post_init__(self) -> None:
        if not (0 < self.v_off < self.v_on <= self.v_max):
            raise ReproError(
                "capacitor thresholds must satisfy 0 < v_off < v_on <= v_max "
                f"(got v_off={self.v_off}, v_on={self.v_on}, v_max={self.v_max})"
            )
        if self.voltage < 0:
            self.voltage = self.v_max

    # -- energy <-> voltage -------------------------------------------------

    def _energy_at(self, voltage: float) -> float:
        """Stored energy (uJ) at ``voltage``: E = 1/2 C V^2."""
        return 0.5 * self.capacitance_f * voltage * voltage * 1e6

    @property
    def stored_uj(self) -> float:
        """Energy currently stored, in microjoules."""
        return self._energy_at(self.voltage)

    @property
    def usable_uj(self) -> float:
        """Energy available before brown-out, in microjoules."""
        return max(0.0, self.stored_uj - self._energy_at(self.v_off))

    @property
    def budget_uj(self) -> float:
        """Best-case usable energy of one full charge (v_max -> v_off).

        Section 3.5: a task whose cost exceeds this budget can never
        complete and causes a non-termination bug.
        """
        return self._energy_at(self.v_max) - self._energy_at(self.v_off)

    @property
    def is_on(self) -> bool:
        """Whether execution is currently possible."""
        return self.voltage > self.v_off

    # -- charge / discharge ---------------------------------------------------

    def discharge(self, energy_uj: float) -> bool:
        """Drain ``energy_uj``; returns False when the device browns out.

        The voltage never goes below zero; draining past v_off leaves
        the capacitor exactly at v_off (the residual difference is the
        leakage spent during the brown-out transient).
        """
        if energy_uj < 0:
            raise ReproError(f"cannot discharge negative energy ({energy_uj})")
        remaining = self.stored_uj - energy_uj
        floor = self._energy_at(self.v_off)
        if remaining <= floor:
            self.voltage = self.v_off
            return False
        self.voltage = math.sqrt(2.0 * remaining * 1e-6 / self.capacitance_f)
        return True

    def charge(self, power_mw: float, duration_us: float) -> None:
        """Accumulate harvested energy, saturating at ``v_max``."""
        if power_mw < 0:
            raise ReproError(f"harvested power must be >= 0 (got {power_mw})")
        total = self.stored_uj + power_time_to_energy_uj(power_mw, duration_us)
        total = min(total, self._energy_at(self.v_max))
        self.voltage = math.sqrt(2.0 * total * 1e-6 / self.capacitance_f)

    def time_to_reach_us(self, target_v: float, power_mw: float) -> float:
        """Charging time (us) from the current voltage to ``target_v``.

        Returns ``inf`` when ``power_mw`` is zero (no harvest, device
        stays dark forever — matching a harvester out of range).
        """
        if target_v <= self.voltage:
            return 0.0
        if power_mw <= 0:
            return math.inf
        deficit_uj = self._energy_at(target_v) - self.stored_uj
        return deficit_uj / (power_mw * 1e-3)

    def recharge_to_on(self, power_mw: float) -> float:
        """Model the dark period after a brown-out.

        Charges the capacitor to the turn-on threshold and returns how
        long that took (us).
        """
        dark_us = self.time_to_reach_us(self.v_on, power_mw)
        if math.isinf(dark_us):
            return dark_us
        self.voltage = max(self.voltage, self.v_on)
        return dark_us

    def reset_full(self) -> None:
        """Return the capacitor to a full charge (start of an experiment)."""
        self.voltage = self.v_max


class EnergyMeter:
    """Accumulates consumed energy by category.

    Categories are free-form strings; the conventional ones are
    ``cpu``, ``fram``, ``dma``, ``lea``, ``boot`` and one per
    peripheral (``temp``, ``humidity``, ``radio``...).
    """

    def __init__(self) -> None:
        self._by_category: Dict[str, float] = {}

    def add(self, category: str, energy_uj: float) -> None:
        if energy_uj < 0:
            raise ReproError(f"cannot meter negative energy ({energy_uj})")
        self._by_category[category] = self._by_category.get(category, 0.0) + energy_uj

    def add_power(self, category: str, power_mw: float, duration_us: float) -> float:
        """Meter ``power_mw`` over ``duration_us``; returns the energy."""
        energy = power_time_to_energy_uj(power_mw, duration_us)
        self.add(category, energy)
        return energy

    @property
    def total_uj(self) -> float:
        return sum(self._by_category.values())

    def by_category(self) -> Dict[str, float]:
        """Copy of the per-category totals."""
        return dict(self._by_category)

    def get(self, category: str) -> float:
        return self._by_category.get(category, 0.0)

    def reset(self) -> None:
        self._by_category.clear()
