"""Exception hierarchy shared across the repro package.

All errors raised by the simulator, the compiler front-end, and the
runtimes derive from :class:`ReproError` so applications can catch one
base type.  Specific subclasses exist where callers are expected to make
decisions based on the failure kind (e.g. the executor catches
:class:`PowerFailure` to model a reboot, while a
:class:`TransformError` from the compiler front-end is a programming
error that should surface to the user).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class MemoryMapError(ReproError):
    """Invalid address-space configuration (overlap, bad base/size)."""


class MemoryAccessError(ReproError):
    """Out-of-range or misaligned memory access."""


class AllocationError(ReproError):
    """A region allocator ran out of space or saw a duplicate symbol."""


class PowerFailure(ReproError):
    """Raised inside the interpreter when the failure model fires.

    The intermittent executor catches this, models a reboot (volatile
    state cleared, boot-time charged) and resumes the program from its
    last committed point.  It must never escape the executor.
    """

    def __init__(self, at_time_us: float, reason: str = "scheduled") -> None:
        super().__init__(f"power failure at t={at_time_us:.1f}us ({reason})")
        self.at_time_us = at_time_us
        self.reason = reason


class NonTermination(ReproError):
    """A task can never complete within one energy cycle.

    Detected by the executor when a task instance fails more than a
    configurable number of consecutive times without making progress
    (section 3.5 of the paper: a task whose energy cost exceeds the
    capacitor budget re-executes forever).
    """

    def __init__(self, task: str, attempts: int) -> None:
        super().__init__(
            f"task {task!r} did not complete after {attempts} consecutive "
            f"power failures; its energy cost likely exceeds the energy buffer"
        )
        self.task = task
        self.attempts = attempts


class ProgramError(ReproError):
    """Malformed program IR (unknown variable, bad operand types...)."""


class TransformError(ReproError):
    """The compiler front-end rejected the program.

    Examples: a ``Timely`` annotation without a freshness interval, or a
    ``_DMA_copy`` whose size exceeds the shared privatization buffer
    (section 6, "DMA Privatization Buffer Limits").
    """


class PeripheralError(ReproError):
    """Unknown peripheral operation or invalid peripheral arguments."""


class CampaignInterrupted(ReproError):
    """A campaign was stopped (SIGINT/SIGTERM/cancel) before finishing.

    Raised by the serve scheduler after it has *drained* in-flight
    work and flushed the checkpoint, so everything completed up to the
    interrupt is durable and the campaign can resume exactly where it
    died.  Drivers attach a partial, resumable report before
    re-raising; the CLI prints it and exits nonzero.
    """

    def __init__(self, message: str, done: int = 0, total: int = 0) -> None:
        super().__init__(message)
        self.done = done
        self.total = total
        #: index -> decoded result for every unit that finished
        self.results: dict = {}
        #: a partial report, attached by the campaign driver
        self.report: object = None
