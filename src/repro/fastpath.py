"""Global switch for the simulation fast path.

The simulator has two execution paths through the same public API:

* the **fast path** (default): memoized compilation
  (:mod:`repro.core.compile`), zero-copy typed memory cells
  (:mod:`repro.hw.memory`), and per-program interpreter plans
  (:mod:`repro.runtimes.base`);
* the **reference path**: every run rebuilds everything from scratch
  and every memory access goes through the raw byte read/write
  round-trip, exactly as the simulator behaved before the fast path
  existed.

Both paths must be observationally identical — same metrics, same
traces, same NV state.  The reference path exists so the perf harness
(:mod:`repro.bench.perf`) can measure the speedup honestly on the same
machine, and so a correctness doubt about the caches can always be
settled by re-running with ``REPRO_SIM_FASTPATH=0``.

The switch is process-global and read at cache/cell construction time;
flipping it clears every registered cache so stale fast-path artifacts
cannot leak into reference-path runs (or vice versa).
"""

from __future__ import annotations

import os
from typing import Callable, List

_enabled: bool = os.environ.get("REPRO_SIM_FASTPATH", "1") != "0"

#: callbacks that drop memoized state when the switch flips
_cache_clearers: List[Callable[[], None]] = []


def enabled() -> bool:
    """Whether the fast path is currently active."""
    return _enabled


def set_enabled(flag: bool) -> None:
    """Enable/disable the fast path, clearing all registered caches."""
    global _enabled
    _enabled = bool(flag)
    clear_caches()


# -- the VM path (third execution path, PR 7) -------------------------------
#
# ``REPRO_SIM_VM=1`` compiles each runtime's program into the stepped
# bytecode VM (:mod:`repro.vm`) and drives it from the executor's VM
# loop.  Off by default; the reference and fast paths stay available as
# oracles, and the same observational-equivalence contract applies to
# all three.

_vm_enabled: bool = os.environ.get("REPRO_SIM_VM", "0") == "1"


def vm_enabled() -> bool:
    """Whether the bytecode-VM execution path is currently active."""
    return _vm_enabled


def set_vm_enabled(flag: bool) -> None:
    """Enable/disable the VM path, clearing all registered caches.

    Cached runtimes carry (or lack) compiled bytecode; flipping the
    switch invalidates them the same way flipping the fast path does.
    """
    global _vm_enabled
    _vm_enabled = bool(flag)
    clear_caches()


def register_cache_clearer(fn: Callable[[], None]) -> None:
    """Register a zero-arg callback invoked whenever caches must drop."""
    _cache_clearers.append(fn)


def clear_caches() -> None:
    """Drop every registered memoized artifact (test/bench isolation)."""
    for fn in _cache_clearers:
        fn()
