"""Command-line interface.

Subcommands:

``run``
    execute one evaluation application on a chosen runtime and power
    environment, print metrics (optionally an event timeline);
``lint``
    run the intermittence linter over an application;
``annotate``
    print the annotation assistant's suggestions for an application;
``transform``
    show an application before/after the EaseIO compiler pass
    (the paper's Figure 5 presentation);
``check``
    differential fault-injection correctness checking: replay an
    application under injected power failures and diff every run
    against a continuous-power oracle (exit status 1 on violations);
``bench``
    alias for ``python -m repro.bench`` (regenerate tables/figures);
``obs``
    observability: run one app under the detailed metrics recorder and
    print a summary, export the span tree as Chrome trace-event JSON
    (Perfetto-loadable) or a text timeline, or diff two configurations;
``serve``
    persistent campaign service: a long-lived daemon with a
    content-addressed result store and resumable sharded campaigns,
    plus the matching submit/status/results/cancel/gc client commands;
``env``
    energy environments: record a run's power trace, replay it with
    bit-identical emergent failures, or sweep an environment grid as a
    serve-backed cached campaign;
``fleet``
    remote campaign workers: pull shard leases from a serve daemon,
    execute them with the campaign unit-runners, stream results back
    under a heartbeat (``fleet worker``, ``fleet status``).

``run``, ``check`` and ``fuzz`` accept energy-environment specs
(``--env kind:key=value,...`` — see ``repro.env``): power failures
then *emerge* from a harvest source charging a capacitor against the
workload's own draw, instead of (for ``check``: in addition to) being
injected by a timer.

``check`` and ``fuzz`` campaigns shut down gracefully on SIGINT or
SIGTERM: the worker pool drains in-flight schedules, a partial report
is printed, and — with ``--checkpoint`` — the journal makes the
remainder resumable by re-running the same command (exit status 130).

Examples::

    python -m repro run fir --runtime easeio --seed 3 --timeline
    python -m repro run weather --runtime alpaca --low-ms 5 --high-ms 20
    python -m repro check uni_temp --runtime easeio --mode exhaustive
    python -m repro check fir --runtime alpaca --mode random --runs 200
    python -m repro check fir --store .repro-store --checkpoint fir.ckpt
    python -m repro lint weather
    python -m repro annotate fir
    python -m repro transform uni_temp
    python -m repro bench figure7 --reps 100
    python -m repro obs summary --app fir --runtime easeio
    python -m repro obs export --app uni_dma --format chrome-trace
    python -m repro serve start --root /tmp/serve
    python -m repro serve submit check --app fir --runs 50 --wait
    python -m repro run uni_temp --env markov:seed=7,cap_uf=2.2
    python -m repro check fir --env bursty:seed=3 --mode random --runs 50
    python -m repro env sweep --count 100 --store .repro-store
    python -m repro serve submit check --app fir --fleet --wait
    python -m repro fleet worker --daemon http://127.0.0.1:7341
"""

from __future__ import annotations

import argparse
import sys

from repro.apps import APPS
from repro.core.run import nv_state, resolve_result_vars, run_program
from repro.kernel.power import NoFailures, UniformFailureModel


def _add_run_parser(sub) -> None:
    p = sub.add_parser("run", help="execute one evaluation application")
    p.add_argument("app", choices=sorted(APPS))
    p.add_argument("--runtime", default="easeio",
                   choices=["alpaca", "ink", "samoyed", "easeio"])
    p.add_argument("--continuous", action="store_true",
                   help="no power failures")
    p.add_argument("--low-ms", type=float, default=5.0,
                   help="minimum failure interval (default 5)")
    p.add_argument("--high-ms", type=float, default=20.0,
                   help="maximum failure interval (default 20)")
    p.add_argument("--seed", type=int, default=0,
                   help="failure-schedule seed")
    p.add_argument("--env-seed", type=int, default=1,
                   help="environment/sensor seed")
    p.add_argument("--env", default=None, metavar="SPEC",
                   help="energy-environment spec (kind:key=val,...); "
                        "failures then emerge from the energy budget "
                        "instead of the uniform timer")
    p.add_argument("--timeline", action="store_true",
                   help="print the event timeline")
    p.add_argument("--events", action="store_true",
                   help="print the chronological event listing")
    p.add_argument("--state", action="store_true",
                   help="print the final NV result state")


def _cmd_run(args) -> int:
    spec = APPS[args.app]
    if args.continuous:
        model = NoFailures()
    elif args.env is not None:
        from repro.env.spec import parse_env

        model = parse_env(args.env)
    else:
        model = UniformFailureModel(args.low_ms, args.high_ms, seed=args.seed)
    program = spec.build()
    result = run_program(
        program, runtime=args.runtime, failure_model=model,
        seed=args.env_seed,
    )
    m = result.metrics
    print(f"app={m.app} runtime={m.runtime} completed={m.completed}")
    print(f"  active time : {m.active_time_us / 1000.0:10.3f} ms")
    print(f"  app+io time : {m.app_time_us / 1000.0:10.3f} ms")
    print(f"  overhead    : {m.overhead_time_us / 1000.0:10.3f} ms")
    print(f"  boot time   : {m.boot_time_us / 1000.0:10.3f} ms")
    print(f"  failures    : {m.power_failures}")
    print(f"  task commits: {m.task_commits}")
    print(f"  io exec/skip: {m.io_executions}/{m.io_skips} "
          f"(re-executed {m.io_reexecutions})")
    print(f"  dma exec/skip: {m.dma_executions}/{m.dma_skips} "
          f"(re-executed {m.dma_reexecutions})")
    print(f"  energy      : {m.energy_uj:10.2f} uJ")
    if args.env is not None:
        print(f"  dark time   : {model.dark_time_us / 1000.0:10.3f} ms")
        print(f"  harvested   : {model.harvested_uj:10.2f} uJ "
              f"(consumed {model.consumed_uj:.2f} uJ)")
        if result.died_dark:
            print("  died dark: recharge never reached the on-threshold")
    if args.state:
        print("  final NV state:")
        names = resolve_result_vars(program, spec.result_vars)
        for name, value in nv_state(result, names).items():
            print(f"    {name} = {value}")
    trace = result.runtime.machine.trace  # type: ignore[attr-defined]
    if args.timeline:
        from repro.bench.timeline import render_lanes

        print()
        print(render_lanes(trace))
    if args.events:
        from repro.bench.timeline import render_events

        print()
        print(render_events(trace))
    return 0


def _add_check_parser(sub) -> None:
    p = sub.add_parser(
        "check", help="fault-injection correctness checking"
    )
    p.add_argument("app", choices=sorted(APPS))
    p.add_argument("--runtime", default="easeio",
                   choices=["alpaca", "ink", "samoyed", "easeio"])
    p.add_argument("--mode", default="exhaustive",
                   choices=["exhaustive", "random"],
                   help="one run per step boundary, or seeded "
                        "multi-failure schedules")
    p.add_argument("--workers", type=int, default=None,
                   help="parallel checker processes "
                        "(default: all cores, os.cpu_count())")
    p.add_argument("--runs", type=int, default=100,
                   help="random mode: number of schedules (default 100)")
    p.add_argument("--failures-per-run", type=int, default=3,
                   help="random mode: resets per schedule (default 3)")
    p.add_argument("--seed", type=int, default=0,
                   help="random mode: schedule seed")
    p.add_argument("--env-seed", type=int, default=1,
                   help="environment/sensor seed")
    p.add_argument("--limit", type=int, default=None,
                   help="exhaustive mode: thin the boundaries to at "
                        "most N injection points")
    p.add_argument("--env", default=None, metavar="SPEC",
                   help="energy-environment spec the injected runs "
                        "execute under (emergent brown-outs compose "
                        "with the injected resets)")
    p.add_argument("--no-events", action="store_true",
                   help="counters-only bulk mode: skip per-event "
                        "checks, keep NV-state checks")
    p.add_argument("--no-shrink", action="store_true",
                   help="skip delta-debugging of failing schedules")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="content-addressed result store: cache hits "
                        "short-circuit simulation")
    p.add_argument("--store-backend", default=None,
                   choices=["fs", "sqlite"],
                   help="store layout (default: sniff the directory, "
                        "else $REPRO_STORE_BACKEND, else fs)")
    p.add_argument("--checkpoint", default=None, metavar="FILE",
                   help="journal progress to FILE; an interrupted "
                        "campaign resumes from it on re-run")
    p.add_argument("--series", default=None, metavar="FILE",
                   help="append one durable telemetry point to this obs "
                        "series file when the campaign finishes "
                        "(REPRO_OBS_SERIES works too); obs trends reads it")
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON instead of text")


def _activate_series(path) -> None:
    if path:
        from repro.obs import series as obs_series

        obs_series.activate(path)


def _graceful_signals() -> None:
    """Turn SIGTERM into KeyboardInterrupt so pools drain cleanly."""
    import signal

    def _raise(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _raise)
    except ValueError:  # pragma: no cover - non-main thread
        pass


def _emit_report(report, as_json: bool) -> None:
    import json

    if as_json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render_text())


def _cmd_check(args) -> int:
    from repro.check import CampaignConfig, run_campaign
    from repro.check.campaign import resolve_workers
    from repro.errors import CampaignInterrupted

    _graceful_signals()
    cfg = CampaignConfig(
        app=args.app,
        runtime=args.runtime,
        mode=args.mode,
        workers=resolve_workers(args.workers),
        env_seed=args.env_seed,
        seed=args.seed,
        runs=args.runs,
        failures_per_run=args.failures_per_run,
        limit=args.limit,
        env=args.env,
        trace_events=not args.no_events,
        shrink=not args.no_shrink,
        progress=True,
        store_dir=args.store,
        store_backend=args.store_backend,
        checkpoint=args.checkpoint,
    )
    _activate_series(args.series)
    try:
        report = run_campaign(cfg)
    except CampaignInterrupted as exc:
        if exc.report is not None:
            _emit_report(exc.report, args.json)
        print(f"check: interrupted after {exc.done}/{exc.total} runs"
              + (f"; resume with --checkpoint {args.checkpoint}"
                 if args.checkpoint else ""),
              file=sys.stderr)
        return 130
    _emit_report(report, args.json)
    return 0 if report.ok else 1


def _add_fuzz_parser(sub) -> None:
    p = sub.add_parser(
        "fuzz", help="property-based differential fuzzing"
    )
    p.add_argument("--runs", type=int, default=100,
                   help="number of generated programs (default 100)")
    p.add_argument("--seed", type=int, default=0,
                   help="generator seed")
    p.add_argument("--workers", type=int, default=1,
                   help="parallel fuzzing processes (default 1)")
    p.add_argument("--corpus", default=None, metavar="DIR",
                   help="persist shrunk reproducers to this directory")
    p.add_argument("--runtimes", default=",".join(
                       ("easeio", "alpaca", "ink", "samoyed")),
                   help="comma-separated runtimes to check (default all)")
    p.add_argument("--limit", type=int, default=24,
                   help="exhaustive-boundary cap per campaign (default 24)")
    p.add_argument("--env-seed", type=int, default=1,
                   help="environment/sensor seed")
    p.add_argument("--envs", default=None,
                   help="comma-separated energy-environment specs the "
                        "generated programs cycle through; the literal "
                        "word 'random' draws a fresh seeded environment "
                        "per program")
    p.add_argument("--no-shrink", action="store_true",
                   help="skip generator-aware program minimization")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="content-addressed result store: cache hits "
                        "short-circuit simulation")
    p.add_argument("--store-backend", default=None,
                   choices=["fs", "sqlite"],
                   help="store layout (default: sniff the directory, "
                        "else $REPRO_STORE_BACKEND, else fs)")
    p.add_argument("--checkpoint", default=None, metavar="FILE",
                   help="journal progress to FILE; an interrupted "
                        "campaign resumes from it on re-run")
    p.add_argument("--series", default=None, metavar="FILE",
                   help="append one durable telemetry point to this obs "
                        "series file when the fuzz run finishes "
                        "(REPRO_OBS_SERIES works too); obs trends reads it")
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON instead of text")
    p.add_argument("-o", "--output", default=None, metavar="FILE",
                   help="also write the JSON report to FILE")


def _cmd_fuzz(args) -> int:
    import json

    from repro.errors import CampaignInterrupted
    from repro.fuzz import FuzzConfig, fuzz_run

    _graceful_signals()
    cfg = FuzzConfig(
        runs=args.runs,
        seed=args.seed,
        workers=max(1, args.workers),
        corpus_dir=args.corpus,
        runtimes=tuple(
            rt.strip() for rt in args.runtimes.split(",") if rt.strip()
        ),
        limit=args.limit,
        env_seed=args.env_seed,
        envs=tuple(
            e.strip() for e in args.envs.split(",") if e.strip()
        ) if args.envs else (),
        shrink=not args.no_shrink,
        progress=True,
        store_dir=args.store,
        store_backend=args.store_backend,
        checkpoint=args.checkpoint,
    )
    _activate_series(args.series)
    try:
        report = fuzz_run(cfg)
    except CampaignInterrupted as exc:
        if exc.report is not None:
            if args.output:
                with open(args.output, "w") as fh:
                    json.dump(exc.report.to_json(), fh, indent=2)
                    fh.write("\n")
            _emit_report(exc.report, args.json)
        print(f"fuzz: interrupted after {exc.done}/{exc.total} programs"
              + (f"; resume with --checkpoint {args.checkpoint}"
                 if args.checkpoint else ""),
              file=sys.stderr)
        return 130
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report.to_json(), fh, indent=2)
            fh.write("\n")
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def _cmd_lint(args) -> int:
    from repro.ir.lint import lint_program

    diagnostics = lint_program(APPS[args.app].build())
    if not diagnostics:
        print("no findings")
        return 0
    for d in diagnostics:
        print(d)
    return 1 if any(d.severity == "error" for d in diagnostics) else 0


def _cmd_transform(args) -> int:
    from repro.ir.pretty import diff_view
    from repro.ir.transform import transform_program

    program = APPS[args.app].build()
    result = transform_program(program)
    print(diff_view(program, result.program))
    return 0


def _cmd_annotate(args) -> int:
    from repro.ir.annotate import suggest_annotations

    suggestions = suggest_annotations(APPS[args.app].build())
    if not suggestions:
        print("no suggestions: annotations look complete")
        return 0
    for s in suggestions:
        print(s)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="EaseIO reproduction: run apps, lint, annotate, bench.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_run_parser(sub)
    _add_check_parser(sub)
    _add_fuzz_parser(sub)
    p_lint = sub.add_parser("lint", help="intermittence linter")
    p_lint.add_argument("app", choices=sorted(APPS))
    p_ann = sub.add_parser("annotate", help="annotation suggestions")
    p_ann.add_argument("app", choices=sorted(APPS))
    p_tr = sub.add_parser(
        "transform", help="show the compiler pass before/after"
    )
    p_tr.add_argument("app", choices=sorted(APPS))
    p_bench = sub.add_parser("bench", help="regenerate tables/figures")
    p_bench.add_argument("rest", nargs=argparse.REMAINDER)
    p_obs = sub.add_parser(
        "obs", help="observability: summaries, span exports, diffs"
    )
    p_obs.add_argument("rest", nargs=argparse.REMAINDER)
    p_serve = sub.add_parser(
        "serve", help="persistent campaign service: daemon + client"
    )
    p_serve.add_argument("rest", nargs=argparse.REMAINDER)
    p_env = sub.add_parser(
        "env", help="energy environments: record, replay, sweep"
    )
    p_env.add_argument("rest", nargs=argparse.REMAINDER)
    p_fleet = sub.add_parser(
        "fleet", help="remote campaign workers: leased shards over HTTP"
    )
    p_fleet.add_argument("rest", nargs=argparse.REMAINDER)

    args = parser.parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "annotate":
        return _cmd_annotate(args)
    if args.command == "transform":
        return _cmd_transform(args)
    if args.command == "bench":
        from repro.bench.__main__ import main as bench_main

        return bench_main(args.rest)
    if args.command == "obs":
        from repro.obs.cli import main as obs_main

        return obs_main(args.rest)
    if args.command == "serve":
        from repro.serve.cli import main as serve_main

        return serve_main(args.rest)
    if args.command == "env":
        from repro.env.cli import main as env_main

        return env_main(args.rest)
    if args.command == "fleet":
        from repro.fleet.cli import main as fleet_main

        return fleet_main(args.rest)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
