"""One-call execution façade.

``run_program`` wires everything together: builds a fresh simulated
machine, loads the requested runtime (compiling the program with the
EaseIO front-end when ``runtime="easeio"``), and drives it with the
intermittent executor under the requested power environment.  Every run
gets its own machine, so results are independent and reproducible from
the two seeds (``seed`` for the environment/sensor noise, the failure
model's own seed for resets).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Type

from repro.errors import ReproError
from repro.hw.energy import Capacitor
from repro.hw.harvester import HarvestSource
from repro.hw.mcu import CostModel, Machine, build_machine
from repro.ir import ast as A
from repro.ir.transform import TransformOptions
from repro.kernel.executor import IntermittentExecutor, RunResult
from repro.kernel.power import FailureModel, NoFailures
from repro.runtimes.alpaca import AlpacaRuntime
from repro.runtimes.base import TaskRuntime
from repro.runtimes.easeio import EaseIORuntime
from repro.runtimes.ink import InKRuntime
from repro.runtimes.samoyed import SamoyedRuntime

#: runtime name -> class, for CLI/bench parameterization.  "samoyed" is
#: an extension beyond the paper's evaluated baselines (Table 1 row).
RUNTIMES: Dict[str, Type[TaskRuntime]] = {
    "alpaca": AlpacaRuntime,
    "ink": InKRuntime,
    "samoyed": SamoyedRuntime,
    "easeio": EaseIORuntime,
}


def build_runtime(
    program: A.Program,
    runtime: str,
    machine: Optional[Machine] = None,
    seed: int = 0,
    cost: Optional[CostModel] = None,
    capacitor: Optional[Capacitor] = None,
    transform_options: Optional[TransformOptions] = None,
    trace_events: bool = True,
) -> TaskRuntime:
    """Instantiate a named runtime with a (fresh) machine."""
    if runtime not in RUNTIMES:
        raise ReproError(
            f"unknown runtime {runtime!r}; choose from {sorted(RUNTIMES)}"
        )
    if machine is None:
        machine = build_machine(
            seed=seed, cost=cost, capacitor=capacitor, trace_events=trace_events
        )
    if runtime == "easeio":
        rt = EaseIORuntime.from_source(program, machine, transform_options)
    else:
        rt = RUNTIMES[runtime](program, machine)
    from repro import fastpath

    if fastpath.vm_enabled():
        from repro.core.compile import _attach_vm

        _attach_vm(rt)
    return rt


def run_program(
    program: A.Program,
    runtime: str = "easeio",
    failure_model: Optional[FailureModel] = None,
    harvest: Optional[HarvestSource] = None,
    seed: int = 0,
    cost: Optional[CostModel] = None,
    capacitor: Optional[Capacitor] = None,
    transform_options: Optional[TransformOptions] = None,
    trace_events: bool = True,
    nontermination_limit: int = 2000,
    max_active_time_us: float = 600_000_000.0,
    step_observer: Optional[Callable] = None,
    recorder=None,
) -> RunResult:
    """Execute ``program`` once under the given power environment.

    Returns the executor's :class:`~repro.kernel.executor.RunResult`;
    ``result.runtime`` is attached for post-run state inspection.
    ``step_observer`` is forwarded to the executor (used by the
    fault-injection checker's boundary probe).  ``recorder`` (a
    :class:`repro.obs.metrics.RunRecorder`) attaches the detailed
    observability hook for this run.
    """
    rt = build_runtime(
        program,
        runtime,
        seed=seed,
        cost=cost,
        capacitor=capacitor,
        transform_options=transform_options,
        trace_events=trace_events,
    )
    rt.machine.trace.recorder = recorder
    executor = IntermittentExecutor(
        failure_model=failure_model,
        harvest=harvest,
        nontermination_limit=nontermination_limit,
        max_active_time_us=max_active_time_us,
        step_observer=step_observer,
    )
    result = executor.run(rt)
    result.runtime = rt  # type: ignore[attr-defined]
    return result


def run_app(
    app: str,
    runtime: str = "easeio",
    failure_model: Optional[FailureModel] = None,
    harvest: Optional[HarvestSource] = None,
    seed: int = 0,
    cost: Optional[CostModel] = None,
    capacitor: Optional[Capacitor] = None,
    build_kwargs: Optional[Dict[str, object]] = None,
    transform_options: Optional[TransformOptions] = None,
    trace_events: bool = True,
    nontermination_limit: int = 2000,
    max_active_time_us: float = 600_000_000.0,
    step_observer: Optional[Callable] = None,
    reuse_machine: bool = False,
    recorder=None,
) -> RunResult:
    """Execute a *registered app* once, through the compilation cache.

    Same contract as :func:`run_program`, but the program build and (for
    EaseIO) the IR transform are memoized per
    ``(app, build_kwargs, transform_options)`` — the hot entry point for
    the fault-injection checker and the benchmark runner, which execute
    the same compiled cell hundreds of times.  Each run gets its own
    fresh machine; only the immutable compiled artifact is shared (see
    :mod:`repro.core.compile`).

    ``reuse_machine=True`` opts into *machine recycling*: sequential
    calls with the same compiled cell, seed and trace setting recycle
    one pooled machine via ``TaskRuntime.reset()`` instead of building
    a new one.  Callers must consume each ``RunResult`` (including any
    NV snapshots — they are copies) before the next call, and only the
    default machine configuration is pooled; a custom ``cost``,
    ``capacitor`` or ``harvest`` always gets a fresh machine.  Ignored
    while the fast path is disabled.
    """
    from repro import fastpath
    from repro.core.compile import compile_app, instantiate, runtime_for

    compiled = compile_app(
        app,
        runtime,
        build_kwargs=build_kwargs,
        transform_options=transform_options,
    )
    if (
        reuse_machine
        and fastpath.enabled()
        and cost is None
        and capacitor is None
        and harvest is None
    ):
        rt = runtime_for(compiled, seed, trace_events)
    else:
        machine = build_machine(
            seed=seed, cost=cost, capacitor=capacitor, trace_events=trace_events
        )
        rt = instantiate(compiled, machine)
    # unconditionally (re)assigned: pooled machines keep their trace
    # across recycles, so a stale recorder must not leak into this run
    rt.machine.trace.recorder = recorder
    executor = IntermittentExecutor(
        failure_model=failure_model,
        harvest=harvest,
        nontermination_limit=nontermination_limit,
        max_active_time_us=max_active_time_us,
        step_observer=step_observer,
    )
    result = executor.run(rt)
    result.runtime = rt  # type: ignore[attr-defined]
    return result


def continuous_useful_time(
    program: A.Program,
    runtime: str,
    seed: int = 0,
    cost: Optional[CostModel] = None,
    transform_options: Optional[TransformOptions] = None,
) -> float:
    """Useful (APP+IO) time of a continuous-power run, microseconds.

    This is the "App" bar of Figures 7 and 10: what the application
    itself costs on this runtime when nothing ever fails.
    """
    result = run_program(
        program,
        runtime=runtime,
        failure_model=NoFailures(),
        seed=seed,
        cost=cost,
        transform_options=transform_options,
        trace_events=False,
    )
    return result.metrics.app_time_us


def resolve_result_vars(
    program: A.Program, result_vars: Sequence[str]
) -> tuple:
    """Resolve an app's ``RESULT_VARS`` against a built program.

    The ``("*",)`` sentinel (used by the ``fuzz`` app slot, whose
    programs declare their own variables) expands to every NV
    declaration of the program; anything else passes through.
    """
    if tuple(result_vars) == ("*",):
        return tuple(d.name for d in program.decls if d.storage == A.NV)
    return tuple(result_vars)


def nv_state(result: RunResult, names: Sequence[str]) -> Dict[str, object]:
    """Read NV variables from a finished run (correctness checks)."""
    return result.runtime.result_state(names)  # type: ignore[attr-defined]
