"""Public programming interface — the paper's language surface (Table 2).

Applications are written against a small builder DSL that mirrors the
EaseIO C macros:

=============================  =============================================
paper construct                this API
=============================  =============================================
``__nv int x;``                ``b.nv("x")`` / ``b.nv_array("x", n)``
``Task sense() { ... }``       ``with b.task("sense") as t: ...``
``_call_IO(Temp(),"Timely",    ``t.call_io("temp", semantic="Timely",
10)``                          interval_ms=10, out="temp")``
``_IO_block_begin("Single")``  ``with t.io_block("Single"): ...``
``_DMA_copy(src,dst,size)``    ``t.dma_copy("src", "dst", size_bytes)``
``Exclude`` annotation         ``t.dma_copy(..., exclude=True)``
``transition_to(next)``        ``t.transition("next")``
=============================  =============================================

Expressions use the :class:`E` wrapper: ``t.v("temp") < 10`` builds a
comparison node; ``&``/``|``/``~`` build boolean operations.

Example — the unsafe-execution task of Figure 2c::

    b = ProgramBuilder("sense_app")
    b.nv("stdy")
    b.nv("alarm")
    with b.task("sense") as t:
        t.local("temp")
        t.call_io("temp", semantic="Always", out="temp")
        with t.if_(t.v("temp") < 10):
            t.assign("stdy", 1)
        with t.else_():
            t.assign("alarm", 1)
        t.halt()
    program = b.build()
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ProgramError
from repro.ir import ast as A
from repro.ir.semantics import Annotation, Semantic

Number = Union[int, float]
ExprLike = Union["E", A.Expr, Number]


class E:
    """Expression wrapper with operator overloads."""

    def __init__(self, node: A.Expr) -> None:
        self.node = node

    # arithmetic -----------------------------------------------------------
    def __add__(self, other: ExprLike) -> "E":
        return E(A.BinOp("+", self.node, unwrap(other)))

    def __radd__(self, other: ExprLike) -> "E":
        return E(A.BinOp("+", unwrap(other), self.node))

    def __sub__(self, other: ExprLike) -> "E":
        return E(A.BinOp("-", self.node, unwrap(other)))

    def __rsub__(self, other: ExprLike) -> "E":
        return E(A.BinOp("-", unwrap(other), self.node))

    def __mul__(self, other: ExprLike) -> "E":
        return E(A.BinOp("*", self.node, unwrap(other)))

    def __rmul__(self, other: ExprLike) -> "E":
        return E(A.BinOp("*", unwrap(other), self.node))

    def __floordiv__(self, other: ExprLike) -> "E":
        return E(A.BinOp("//", self.node, unwrap(other)))

    def __truediv__(self, other: ExprLike) -> "E":
        return E(A.BinOp("/", self.node, unwrap(other)))

    def __mod__(self, other: ExprLike) -> "E":
        return E(A.BinOp("%", self.node, unwrap(other)))

    # comparisons ------------------------------------------------------------
    def __lt__(self, other: ExprLike) -> "E":
        return E(A.Cmp("<", self.node, unwrap(other)))

    def __le__(self, other: ExprLike) -> "E":
        return E(A.Cmp("<=", self.node, unwrap(other)))

    def __gt__(self, other: ExprLike) -> "E":
        return E(A.Cmp(">", self.node, unwrap(other)))

    def __ge__(self, other: ExprLike) -> "E":
        return E(A.Cmp(">=", self.node, unwrap(other)))

    def eq(self, other: ExprLike) -> "E":
        return E(A.Cmp("==", self.node, unwrap(other)))

    def ne(self, other: ExprLike) -> "E":
        return E(A.Cmp("!=", self.node, unwrap(other)))

    # boolean ---------------------------------------------------------------
    def __and__(self, other: ExprLike) -> "E":
        return E(A.BoolOp("and", (self.node, unwrap(other))))

    def __or__(self, other: ExprLike) -> "E":
        return E(A.BoolOp("or", (self.node, unwrap(other))))

    def __invert__(self) -> "E":
        return E(A.Not(self.node))


def unwrap(value: ExprLike) -> A.Expr:
    """Coerce numbers / wrappers to expression nodes."""
    if isinstance(value, E):
        return value.node
    if isinstance(value, A.Expr):
        return value
    if isinstance(value, (int, float)):
        return A.Const(float(value))
    raise ProgramError(f"cannot use {value!r} as an expression")


def _lvalue(target: Union[str, E, A.Expr]) -> A.LValue:
    if isinstance(target, str):
        return A.Var(target)
    node = unwrap(target)
    if isinstance(node, (A.Var, A.Index)):
        return node
    raise ProgramError(f"invalid assignment target {target!r}")


def _annotation(semantic: Union[str, Semantic], interval_ms: Optional[float]) -> Annotation:
    sem = semantic if isinstance(semantic, Semantic) else Semantic.parse(str(semantic))
    return Annotation(sem, interval_ms)


class _BlockCtx:
    """Context manager pushing/popping a statement list."""

    def __init__(self, builder: "TaskBuilder", on_close) -> None:
        self._builder = builder
        self._on_close = on_close

    def __enter__(self) -> "TaskBuilder":
        self._builder._stack.append([])
        return self._builder

    def __exit__(self, exc_type, exc, tb) -> None:
        stmts = self._builder._stack.pop()
        if exc_type is None:
            self._on_close(tuple(stmts))


class TaskBuilder:
    """Builds one task body."""

    def __init__(self, program: "ProgramBuilder", name: str) -> None:
        self.program = program
        self.name = name
        self._stack: List[List[A.Stmt]] = [[]]
        self._last_if: Optional[int] = None  # index of last If for else_()

    # -- expression helpers ----------------------------------------------------

    def v(self, name: str) -> E:
        """Reference a scalar variable."""
        return E(A.Var(name))

    def at(self, name: str, index: ExprLike) -> E:
        """Reference an array element."""
        return E(A.Index(name, unwrap(index)))

    # -- declarations forwarded to the program ----------------------------------

    def local(self, name: str, dtype: str = "int16", length: int = 1) -> "TaskBuilder":
        """Declare a volatile (task-local) variable."""
        self.program.local(name, dtype=dtype, length=length)
        return self

    # -- statements ---------------------------------------------------------------

    def _emit(self, stmt: A.Stmt) -> "TaskBuilder":
        self._stack[-1].append(stmt)
        return self

    def assign(self, target: Union[str, E], expr: ExprLike) -> "TaskBuilder":
        return self._emit(A.Assign(_lvalue(target), unwrap(expr)))

    def compute(self, cycles: float, label: str = "") -> "TaskBuilder":
        """Abstract application work of ``cycles`` CPU cycles."""
        return self._emit(A.Compute(cycles, label))

    def call_io(
        self,
        func: str,
        semantic: Union[str, Semantic] = "Always",
        interval_ms: Optional[float] = None,
        out: Optional[Union[str, E]] = None,
        args: Sequence[ExprLike] = (),
        **lea_params: object,
    ) -> "TaskBuilder":
        """``_call_IO(func, semantic, ...)``.

        ``out`` receives the returned value; ``args`` are evaluated and
        passed (e.g. a radio payload).  Accelerator calls use
        ``func="lea.<op>"`` with operand names in ``lea_params``.
        """
        return self._emit(
            A.IOCall(
                func=func,
                annotation=_annotation(semantic, interval_ms),
                args=tuple(unwrap(a) for a in args),
                out=None if out is None else _lvalue(out),
                lea_params=dict(lea_params) if lea_params else None,
            )
        )

    def io_block(
        self,
        semantic: Union[str, Semantic],
        interval_ms: Optional[float] = None,
    ) -> _BlockCtx:
        """``_IO_block_begin(semantic) ... _IO_block_end`` (nests)."""
        annotation = _annotation(semantic, interval_ms)

        def close(stmts: Tuple[A.Stmt, ...]) -> None:
            self._emit(A.IOBlock(annotation=annotation, body=stmts))

        return _BlockCtx(self, close)

    def dma_copy(
        self,
        src: str,
        dst: str,
        size_bytes: int,
        src_off: ExprLike = 0,
        dst_off: ExprLike = 0,
        exclude: bool = False,
    ) -> "TaskBuilder":
        """``_DMA_copy(&src[src_off], &dst[dst_off], size)``."""
        return self._emit(
            A.DMACopy(
                src=A.BufRef(src, unwrap(src_off)),
                dst=A.BufRef(dst, unwrap(dst_off)),
                size_bytes=size_bytes,
                exclude=exclude,
            )
        )

    def if_(self, cond: ExprLike) -> _BlockCtx:
        cond_node = unwrap(cond)

        def close(stmts: Tuple[A.Stmt, ...]) -> None:
            self._emit(A.If(cond=cond_node, then=stmts))
            self._last_if = len(self._stack[-1]) - 1

        return _BlockCtx(self, close)

    def else_(self) -> _BlockCtx:
        if self._last_if is None:
            raise ProgramError("else_() without a preceding if_()")
        if_index = self._last_if

        def close(stmts: Tuple[A.Stmt, ...]) -> None:
            current = self._stack[-1]
            existing = current[if_index]
            if not isinstance(existing, A.If) or existing.orelse:
                raise ProgramError("else_() does not match its if_()")
            current[if_index] = A.If(
                cond=existing.cond, then=existing.then, orelse=stmts
            )
            self._last_if = None

        return _BlockCtx(self, close)

    def loop(self, var: str, count: int) -> _BlockCtx:
        def close(stmts: Tuple[A.Stmt, ...]) -> None:
            self._emit(A.Loop(var=var, count=count, body=stmts))

        return _BlockCtx(self, close)

    def transition(self, next_task: str) -> "TaskBuilder":
        return self._emit(A.TransitionTo(next_task))

    def halt(self) -> "TaskBuilder":
        return self._emit(A.Halt())

    # -- finalization -----------------------------------------------------------

    def _finish(self) -> A.Task:
        if len(self._stack) != 1:
            raise ProgramError(
                f"task {self.name!r}: unclosed block context"
            )
        return A.Task(self.name, tuple(self._stack[0]))


class _TaskCtx:
    def __init__(self, program: "ProgramBuilder", builder: TaskBuilder) -> None:
        self._program = program
        self._builder = builder

    def __enter__(self) -> TaskBuilder:
        return self._builder

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._program._tasks.append(self._builder._finish())


class ProgramBuilder:
    """Assembles declarations and tasks into a validated program."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._decls: List[A.VarDecl] = []
        self._decl_names: set = set()
        self._tasks: List[A.Task] = []
        self._entry: Optional[str] = None

    # -- declarations ---------------------------------------------------------

    def _declare(
        self,
        name: str,
        storage: str,
        dtype: str,
        length: int,
        init: Optional[Sequence[Number]],
    ) -> "ProgramBuilder":
        if name in self._decl_names:
            raise ProgramError(f"variable {name!r} already declared")
        init_tuple = None if init is None else tuple(float(v) for v in init)
        self._decls.append(
            A.VarDecl(name=name, storage=storage, dtype=dtype, length=length, init=init_tuple)
        )
        self._decl_names.add(name)
        return self

    def nv(
        self, name: str, dtype: str = "int16", init: Optional[Number] = None
    ) -> "ProgramBuilder":
        """Declare an ``__nv`` scalar (FRAM, survives power failures)."""
        return self._declare(
            name, A.NV, dtype, 1, None if init is None else [init]
        )

    def nv_array(
        self,
        name: str,
        length: int,
        dtype: str = "int16",
        init: Optional[Sequence[Number]] = None,
    ) -> "ProgramBuilder":
        """Declare an ``__nv`` array."""
        return self._declare(name, A.NV, dtype, length, init)

    def local(
        self, name: str, dtype: str = "int16", length: int = 1
    ) -> "ProgramBuilder":
        """Declare a volatile SRAM variable (cleared on every reboot)."""
        if name in self._decl_names:
            return self  # task-local re-declarations are idempotent
        return self._declare(name, A.LOCAL, dtype, length, None)

    def lea_array(
        self, name: str, length: int, dtype: str = "int16"
    ) -> "ProgramBuilder":
        """Declare a volatile LEA-RAM array (accelerator operand)."""
        return self._declare(name, A.LEARAM, dtype, length, None)

    # -- tasks ---------------------------------------------------------------------

    def task(self, name: str) -> _TaskCtx:
        if self._entry is None:
            self._entry = name
        return _TaskCtx(self, TaskBuilder(self, name))

    def entry(self, name: str) -> "ProgramBuilder":
        self._entry = name
        return self

    # -- build -----------------------------------------------------------------------

    def build(self) -> A.Program:
        if not self._tasks:
            raise ProgramError(f"program {self.name!r} has no tasks")
        if self._entry is None:
            raise ProgramError(f"program {self.name!r} has no entry task")
        program = A.Program(
            name=self.name,
            decls=tuple(self._decls),
            tasks=tuple(self._tasks),
            entry=self._entry,
        )
        program = A.assign_sites(program)
        program.validate()
        return program
