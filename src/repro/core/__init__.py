"""EaseIO public API: the paper's programming surface.

``ProgramBuilder``/``TaskBuilder`` assemble annotated task programs;
``run_program`` compiles (for EaseIO) and executes them on the
simulated board under a chosen power environment.
"""

from repro.core.api import E, ProgramBuilder, TaskBuilder, unwrap
from repro.core.run import RUNTIMES, build_runtime, continuous_useful_time, run_program

__all__ = [
    "E",
    "ProgramBuilder",
    "RUNTIMES",
    "TaskBuilder",
    "build_runtime",
    "continuous_useful_time",
    "run_program",
    "unwrap",
]
