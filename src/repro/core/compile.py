"""Memoized compilation of evaluation applications.

Building an application (``AppSpec.build``), validating its IR, and —
for EaseIO — running the source-to-source transform are all
*deterministic* functions of ``(app, build_kwargs, transform_options)``.
The fault-injection checker and the benchmark runner used to repeat
that work for every injected schedule / repetition; for the exhaustive
campaigns of section 5.4 that is hundreds of identical compilations per
(app, runtime) cell.

This module compiles **once per key** and shares the artifact:

``build_app_program(app, build_kwargs)``
    the built, site-assigned, validated :class:`~repro.ir.ast.Program`;

``compile_app(app, runtime, ...)``
    a :class:`CompiledProgram` bundling the program with the
    :class:`~repro.ir.transform.TransformResult` when ``runtime`` is
    EaseIO;

``instantiate(compiled, machine)``
    a fresh runtime instance on ``machine`` from the shared artifact —
    the explicit **copy-on-instantiate boundary**.  Compiled artifacts
    are immutable after construction (``Program`` is frozen; the
    interpreter keeps all mutable state in the machine/environment), so
    one artifact may back any number of sequential or concurrent runs.

Safety: the cache is only consulted while the global fast path
(:mod:`repro.fastpath`) is enabled; disabling it (or calling
:func:`clear_cache`) drops every artifact, restoring the historical
compile-per-run behaviour exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import fastpath
from repro.apps import APPS
from repro.errors import ReproError
from repro.hw.mcu import Machine, build_machine
from repro.ir import ast as A
from repro.ir.transform import (
    TransformOptions,
    TransformResult,
    transform_program,
)


@dataclass(frozen=True)
class CompiledProgram:
    """A shareable compilation artifact for one (app, runtime) cell."""

    app: str
    runtime: str
    program: A.Program
    #: EaseIO only: transform output (``program`` above is its input)
    transformed: Optional[TransformResult] = None


def _freeze(value: object) -> object:
    """A hashable, order-insensitive rendering of a kwargs value."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, set):
        return tuple(sorted(_freeze(v) for v in value))
    return value


def program_key(
    app: str, build_kwargs: Optional[Dict[str, object]] = None
) -> Tuple:
    """Cache key for a built program."""
    return (app, _freeze(dict(build_kwargs or {})))


def _options_key(options: Optional[TransformOptions]) -> Tuple:
    options = options or TransformOptions()
    return tuple(
        (name, getattr(options, name))
        for name in sorted(options.__dataclass_fields__)  # type: ignore[attr-defined]
    )


_programs: Dict[Tuple, A.Program] = {}
_compiled: Dict[Tuple, CompiledProgram] = {}
_hits = 0
_misses = 0
# bytecode-VM compile counters (the VM path's analogue of hits/misses;
# folded into the obs registry by the executor's VM driver)
_vm_hits = 0
_vm_misses = 0


def build_app_program(
    app: str, build_kwargs: Optional[Dict[str, object]] = None
) -> A.Program:
    """Build (or fetch) the validated program of a registered app.

    The program is exactly what ``AppSpec.build`` returns — site
    assignment is *not* folded in, because the baseline runtimes
    historically execute the unsited program (only the EaseIO transform
    assigns sites, internally).  Cached and cold builds must stay
    byte-identical in behaviour.
    """
    global _hits, _misses
    if app not in APPS:
        raise ReproError(f"unknown app {app!r}; choose from {sorted(APPS)}")
    if not fastpath.enabled():
        program = APPS[app].build(**dict(build_kwargs or {}))
        program.validate()
        return program
    key = program_key(app, build_kwargs)
    program = _programs.get(key)
    if program is None:
        _misses += 1
        program = APPS[app].build(**dict(build_kwargs or {}))
        program.validate()
        _programs[key] = program
    else:
        _hits += 1
    return program


def compile_app(
    app: str,
    runtime: str,
    build_kwargs: Optional[Dict[str, object]] = None,
    transform_options: Optional[TransformOptions] = None,
) -> CompiledProgram:
    """Compile (or fetch) the runtime-ready artifact for one cell."""
    global _hits, _misses
    if not fastpath.enabled():
        return _compile_cold(app, runtime, build_kwargs, transform_options)
    key = (program_key(app, build_kwargs), runtime, _options_key(transform_options))
    artifact = _compiled.get(key)
    if artifact is None:
        _misses += 1
        artifact = _compile_cold(app, runtime, build_kwargs, transform_options)
        _compiled[key] = artifact
    else:
        _hits += 1
    return artifact


def _compile_cold(
    app: str,
    runtime: str,
    build_kwargs: Optional[Dict[str, object]],
    transform_options: Optional[TransformOptions],
) -> CompiledProgram:
    program = build_app_program(app, build_kwargs)
    transformed = None
    if runtime == "easeio":
        transformed = transform_program(program, transform_options)
    return CompiledProgram(
        app=app, runtime=runtime, program=program, transformed=transformed
    )


def instantiate(compiled: CompiledProgram, machine: Machine):
    """A fresh runtime instance on ``machine`` from a shared artifact."""
    from repro.core.run import RUNTIMES  # local import: avoids a cycle

    cls = RUNTIMES[compiled.runtime]
    if compiled.transformed is not None:
        rt = cls.instantiate(compiled.transformed, machine)
    else:
        rt = cls.instantiate(compiled.program, machine)
    if fastpath.vm_enabled():
        _attach_vm(rt)
    return rt


def _attach_vm(rt) -> None:
    """Compile the runtime's program to bytecode and attach the VM.

    Bytecode closes over one runtime instance's typed cells, so the
    artifact is inherently per-instance: a fresh instance compiles
    (a vm miss), a pooled instance recycled through :func:`runtime_for`
    keeps its VM across resets (a vm hit) because
    :meth:`~repro.hw.mcu.Machine.reset` preserves every object identity
    the bytecode bound.  ``lower`` returning ``None`` (unlowerable
    program) leaves the generator path in charge for this instance.
    """
    global _vm_misses
    from repro.vm import lower as _lower_vm  # local import: avoids a cycle

    _vm_misses += 1
    rt._vm = _lower_vm(rt)
    rt._vm_cached = False  # this instance compiled its own bytecode


#: recycled runtime instances (machine included), keyed by compiled
#: artifact identity + machine-construction arguments
_runtimes: Dict[Tuple, object] = {}


def runtime_for(compiled: CompiledProgram, seed: int, trace_events: bool):
    """A pooled, recycled runtime for a *default-configuration* machine.

    Building a machine and loading a runtime costs more than many short
    simulated runs; callers that execute one compiled cell hundreds of
    times sequentially (the checker, ``run_many``) can instead recycle
    one instance via :meth:`~repro.runtimes.base.TaskRuntime.reset`,
    which restores the exact just-instantiated state (memory re-zeroed
    in place, rngs reseeded, cursors at the entry task).

    Caller contract: runs must be **sequential** — acquiring the same
    key again resets the machine, so the previous ``RunResult`` must be
    fully consumed first (metrics and NV snapshots are copies, so
    holding those is fine; holding ``result.runtime`` live state is
    not).  Only valid for machines built with default cost model and
    capacitor; anything custom gets a fresh machine from the caller.
    """
    global _vm_hits
    key = (id(compiled), seed, trace_events)
    rt = _runtimes.get(key)
    if rt is None:
        machine = build_machine(seed=seed, trace_events=trace_events)
        rt = instantiate(compiled, machine)
        _runtimes[key] = rt
    else:
        rt.reset()
        if fastpath.vm_enabled():
            if getattr(rt, "_vm", None) is not None:
                _vm_hits += 1
                rt._vm_cached = True  # recycled bytecode, no recompile
            else:
                # pool entry predates the VM switch flip mid-process
                _attach_vm(rt)
    return rt


def cache_info() -> Dict[str, int]:
    """Hit/miss/size counters (tests and the perf harness)."""
    return {
        "hits": _hits,
        "misses": _misses,
        "programs": len(_programs),
        "compiled": len(_compiled),
        "runtimes": len(_runtimes),
        "vm_hits": _vm_hits,
        "vm_misses": _vm_misses,
    }


def clear_cache() -> None:
    """Drop every cached artifact and reset the counters."""
    global _hits, _misses, _vm_hits, _vm_misses
    _programs.clear()
    _compiled.clear()
    _runtimes.clear()
    _hits = 0
    _misses = 0
    _vm_hits = 0
    _vm_misses = 0


fastpath.register_cache_clearer(clear_cache)
