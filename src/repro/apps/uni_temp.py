"""Uni-task temperature application — the ``Timely`` representative.

Phase-1 workload (section 5.3, and the artifact's
``Timely_Temp_Org`` benchmark): a sensing task that collects a series
of temperature samples, each valid for a bounded freshness window.
After a power failure, a sample only needs re-acquisition if more than
``interval_ms`` elapsed since it was taken; otherwise the preserved
value is still usable.  The baselines re-sense everything on every
attempt; EaseIO re-executes only the expired samples (Table 4's ~43%
re-execution reduction for Timely), at the price of timekeeper
reads and timestamp bookkeeping — the higher runtime overhead visible
in Figure 7b.

Structure (3 tasks, 1 I/O function — Table 3):

* ``t_config`` — configuration compute;
* ``t_sense``  — a sample loop of ``_call_IO(temp, Timely, interval)``
  (exercising the loop-indexed lock-flag extension of section 6);
* ``t_aggregate`` — folds the mean reading into NV state.
"""

from __future__ import annotations

from repro.core.api import ProgramBuilder
from repro.ir import ast as A

RESULT_VARS = ("mean_x100",)


def build(
    samples: int = 16,
    interval_ms: float = 10.0,
    compute_cycles: int = 400,
    per_sample_cycles: int = 60,
) -> A.Program:
    """Build the temperature-sensing uni-task application."""
    b = ProgramBuilder("uni_temp")
    b.nv_array("readings", samples, dtype="float64")
    b.nv("mean_x100", dtype="int32")

    with b.task("t_config") as t:
        t.compute(compute_cycles, "configure_adc")
        t.transition("t_sense")

    with b.task("t_sense") as t:
        with t.loop("i", samples):
            t.call_io(
                "temp",
                semantic="Timely",
                interval_ms=interval_ms,
                out=t.at("readings", t.v("i")),
            )
            t.compute(per_sample_cycles, "condition_sample")
        t.transition("t_aggregate")

    with b.task("t_aggregate") as t:
        t.local("acc", dtype="float64")
        t.assign("acc", 0)
        with t.loop("i", samples):
            t.assign("acc", t.v("acc") + t.at("readings", t.v("i")))
        t.assign("mean_x100", (t.v("acc") * 100) // samples)
        t.halt()

    return b.build()
