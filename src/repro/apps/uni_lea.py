"""Uni-task LEA application — the ``Always`` representative.

Phase-1 workload (section 5.3): an accelerator-bound task.  The LEA
consumes operands staged in volatile LEA-RAM, so a power failure wipes
its inputs and outputs; the accelerator invocation genuinely must
re-execute on every attempt — the programmer annotates it ``Always``.
For this semantic EaseIO adds (almost) no logic, so the three runtimes
track each other closely in re-execution counts (Table 4's Always
column) and Figure 7c shows near-parity.

The staging transfers still exist (this is why the paper's LEA
application carries a DMA privatization buffer in its FRAM budget,
Table 6): the input/coefficient copies are NV-to-volatile (``Private``
at run time) and the result write-back is volatile-to-NV (``Single``).

Structure (3 tasks, 1 I/O function — Table 3):

* ``t_prep``   — configuration compute;
* ``t_filter`` — stage operands via DMA, run ``lea.fir`` (Always),
  write the result back via DMA;
* ``t_emit``   — folds a checksum from a probe window.
"""

from __future__ import annotations

from repro.core.api import ProgramBuilder
from repro.ir import ast as A

RESULT_VARS = ("checksum", "probe")


def build(
    n_out: int = 128,
    taps: int = 16,
    compute_cycles: int = 400,
    probe_words: int = 8,
    rounds: int = 3,
) -> A.Program:
    """Build the LEA uni-task application (``rounds`` filter passes)."""
    n_in = n_out + taps - 1
    b = ProgramBuilder("uni_lea")
    b.nv_array("sig", n_in, init=[((i * 13) % 101) - 50 for i in range(n_in)])
    b.nv_array("coef", taps, init=[((i * 5) % 17) - 8 for i in range(taps)])
    b.nv_array("filtered", n_out)
    b.nv_array("probe", probe_words)
    b.nv("checksum", dtype="int32")
    b.nv("round", dtype="int16")
    b.lea_array("lea_in", n_in)
    b.lea_array("lea_coef", taps)
    b.lea_array("lea_out", n_out)

    with b.task("t_prep") as t:
        t.compute(compute_cycles, "configure_lea")
        t.transition("t_filter")

    with b.task("t_filter") as t:
        t.dma_copy("sig", "lea_in", n_in * 2)
        t.dma_copy("coef", "lea_coef", taps * 2)
        t.call_io(
            "lea.fir",
            semantic="Always",
            samples="lea_in",
            coeffs="lea_coef",
            output="lea_out",
            n_out=n_out,
        )
        t.dma_copy("lea_out", "filtered", n_out * 2)
        t.dma_copy("filtered", "probe", probe_words * 2)
        t.transition("t_emit")

    with b.task("t_emit") as t:
        t.local("acc", dtype="int32")
        t.assign("acc", 0)
        with t.loop("i", probe_words):
            t.assign("acc", t.v("acc") + t.at("probe", t.v("i")))
        t.assign("checksum", t.v("checksum") + t.v("acc"))
        t.assign("round", t.v("round") + 1)
        with t.if_(t.v("round") < rounds):
            t.transition("t_prep")
        with t.else_():
            t.halt()

    return b.build()
