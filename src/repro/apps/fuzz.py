"""The fuzzer's application slot.

Generated programs enter the app registry through this module: the
checker and campaign machinery address applications by name, so the
fuzzer serializes each generated program to a JSON spec and passes it
as ``build_kwargs={"spec": <json>}``.  The spec string is hashable,
which makes generated programs first-class citizens of the memoized
compilation cache, and travels to campaign workers as plain data.

``RESULT_VARS`` is the ``("*",)`` sentinel: generated programs declare
their own NV variables, so the observable result is *every* NV
declaration of the built program (resolved per-program by
:func:`repro.core.run.resolve_result_vars`).

No ``check_consistency`` predicate is defined on purpose: generated
programs that sample the environment are judged on effects and
re-execution discipline only, exactly like any other app without one.
"""

from __future__ import annotations

from repro.fuzz.spec import DEFAULT_SPEC_JSON, build_program, spec_from_json
from repro.ir import ast as A

#: sentinel: the result is every NV declaration of the built program
RESULT_VARS = ("*",)


def build(spec: str = DEFAULT_SPEC_JSON) -> A.Program:
    """Materialize one generated program from its JSON spec."""
    return build_program(spec_from_json(spec))
