"""Uni-task DMA application — the ``Single`` semantic representative.

Phase-1 workload (section 5.3): a task-based program whose dominant
work is NVM-to-NVM DMA block copies.  Because the destination is
non-volatile, the copies have single-shot semantics: once a copy has
completed, re-executing it after a power failure is pure waste.  The
baselines re-execute both copies on every attempt; EaseIO's run-time
classification marks them ``Single`` and skips them, which is where the
Figure 7a wasted-work gap comes from.

Structure (3 tasks, 1 I/O function class — Table 3):

* ``t_prepare`` — configuration compute;
* ``t_copy``    — compute, ``src -> mid`` DMA, compute, ``mid -> dst``
  DMA, a small probe copy for the checker, compute;
* ``t_check``   — reads the probe and folds a checksum (the NV result
  used for correctness comparison).
"""

from __future__ import annotations

from repro.core.api import ProgramBuilder
from repro.ir import ast as A

#: NV variables whose final values define the run's observable result.
RESULT_VARS = ("checksum", "probe")


def build(
    words: int = 2048,
    compute_cycles: int = 900,
    probe_words: int = 8,
    rounds: int = 3,
) -> A.Program:
    """Build the DMA uni-task application.

    ``words`` sizes the two main transfers (16-bit words);
    ``compute_cycles`` sets the CPU work between them; the application
    performs ``rounds`` sense-copy-check iterations (each round is a
    fresh task instance, so completed copies are only skipped within a
    round's re-execution).
    """
    size_bytes = words * 2
    b = ProgramBuilder("uni_dma")
    b.nv_array("src_buf", words, init=[(i * 7 + 3) % 251 for i in range(words)])
    b.nv_array("mid_buf", words)
    b.nv_array("dst_buf", words)
    b.nv_array("probe", probe_words)
    b.nv("checksum", dtype="int32")
    b.nv("round", dtype="int16")

    with b.task("t_prepare") as t:
        t.compute(compute_cycles, "configure")
        t.transition("t_copy")

    with b.task("t_copy") as t:
        t.compute(compute_cycles, "pre_copy")
        t.dma_copy("src_buf", "mid_buf", size_bytes)
        t.compute(compute_cycles, "mid_copy")
        t.dma_copy("mid_buf", "dst_buf", size_bytes)
        # small NVM->NVM probe window for the checker task, so the
        # checker never touches the large buffers with the CPU
        t.dma_copy("dst_buf", "probe", probe_words * 2)
        t.compute(compute_cycles, "post_copy")
        t.transition("t_check")

    with b.task("t_check") as t:
        t.local("acc", dtype="int32")
        t.assign("acc", 0)
        with t.loop("i", probe_words):
            t.assign("acc", t.v("acc") + t.at("probe", t.v("i")))
        t.assign("checksum", t.v("checksum") + t.v("acc"))
        t.assign("round", t.v("round") + 1)
        with t.if_(t.v("round") < rounds):
            t.transition("t_prepare")
        with t.else_():
            t.halt()

    return b.build()
