"""Tiny DNN layer builders used by the weather classifier.

The paper's classifier (section 5.4.1) has five layers — convolution,
ReLU, convolution, fully-connected, inference — each implemented TAILS-
style: DMA the layer input from non-volatile memory into LEA-RAM, run
the accelerator kernel, DMA the activation back out.

Two buffering disciplines are supported (Table 5):

``double``
    each layer reads one NV activation buffer and writes the other —
    the conventional WAR-free pattern intermittent DNN frameworks
    require programmers to use;
``single``
    every layer reads and writes the *same* NV buffer.  That creates a
    DMA write-after-read hazard inside each layer task: only EaseIO's
    ``Private`` input snapshot keeps re-executions correct, which is
    exactly the paper's argument for regional privatization + DMA
    semantics (single-buffer halves the activation memory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.api import ProgramBuilder, TaskBuilder

#: geometry of the 5-layer network (8x8 input, 4 classes)
IMG = 12
K1 = 3
C1_OUT = IMG - K1 + 1          # 6x6
K2 = 3
C2_OUT = C1_OUT - K2 + 1       # 4x4
FLAT = C2_OUT * C2_OUT         # 16
CLASSES = 4


@dataclass(frozen=True)
class BufferPlan:
    """Which NV activation buffer each layer reads/writes."""

    single: bool

    def io(self, layer_index: int) -> Tuple[str, str]:
        if self.single:
            return "act_a", "act_a"
        return (
            ("act_a", "act_b")
            if layer_index % 2 == 0
            else ("act_b", "act_a")
        )

    def final_buffer(self, layers: int) -> str:
        if self.single:
            return "act_a"
        return "act_b" if layers % 2 == 1 else "act_a"


def declare_network(b: ProgramBuilder, single_buffer: bool) -> BufferPlan:
    """Declare weights, activation buffers and LEA scratch."""
    b.nv_array("act_a", IMG * IMG)
    if not single_buffer:
        b.nv_array("act_b", IMG * IMG)
    b.nv_array("k1", K1 * K1, init=[1, 0, -1, 2, 0, -2, 1, 0, -1])
    b.nv_array("k2", K2 * K2, init=[0, 1, 0, 1, -4, 1, 0, 1, 0])
    b.nv_array(
        "fc_w",
        CLASSES * FLAT,
        init=[((i * 7 + 3) % 11) - 5 for i in range(CLASSES * FLAT)],
    )
    b.nv_array("scores", CLASSES, dtype="int32")
    b.lea_array("l_img", IMG * IMG)
    b.lea_array("l_ker", K1 * K1)
    b.lea_array("l_act", IMG * IMG)
    b.lea_array("l_w", CLASSES * FLAT)
    b.lea_array("l_res", CLASSES, dtype="int32")
    return BufferPlan(single=single_buffer)


def conv_task(
    b: ProgramBuilder,
    name: str,
    next_task: str,
    plan: BufferPlan,
    layer_index: int,
    side: int,
    ksize: int,
    kernel: str,
    exclude_weights: bool = False,
) -> None:
    """One convolution layer task: DMA in, conv2d, DMA out."""
    src, dst = plan.io(layer_index)
    out_side = side - ksize + 1
    with b.task(name) as t:
        t.dma_copy(src, "l_img", side * side * 2)
        t.dma_copy(kernel, "l_ker", ksize * ksize * 2, exclude=exclude_weights)
        t.call_io(
            "lea.conv2d",
            semantic="Always",
            image="l_img",
            kernel="l_ker",
            output="l_act",
            height=side,
            width=side,
            ksize=ksize,
        )
        t.dma_copy("l_act", dst, out_side * out_side * 2)
        # layer bookkeeping after the write-back: the window in which a
        # failure exposes the single-buffer WAR hazard
        t.compute(800, "layer_bookkeeping")
        t.transition(next_task)


def relu_task(
    b: ProgramBuilder,
    name: str,
    next_task: str,
    plan: BufferPlan,
    layer_index: int,
    count: int,
) -> None:
    """One in-place rectification layer task."""
    src, dst = plan.io(layer_index)
    with b.task(name) as t:
        t.dma_copy(src, "l_act", count * 2)
        t.call_io("lea.relu", semantic="Always", data="l_act", n=count)
        t.dma_copy("l_act", dst, count * 2)
        t.compute(600, "layer_bookkeeping")
        t.transition(next_task)


def fc_task(
    b: ProgramBuilder,
    name: str,
    next_task: str,
    plan: BufferPlan,
    layer_index: int,
    exclude_weights: bool = False,
) -> None:
    """The fully-connected layer: scores = W @ activations."""
    src, _dst = plan.io(layer_index)
    with b.task(name) as t:
        t.dma_copy("fc_w", "l_w", CLASSES * FLAT * 2, exclude=exclude_weights)
        t.dma_copy(src, "l_img", FLAT * 2)
        t.call_io(
            "lea.fc",
            semantic="Always",
            weights="l_w",
            inputs="l_img",
            output="l_res",
            n_out=CLASSES,
            n_in=FLAT,
        )
        t.dma_copy("l_res", "scores", CLASSES * 4)
        t.compute(600, "layer_bookkeeping")
        t.transition(next_task)


def infer_task(b: ProgramBuilder, name: str, next_task: str) -> None:
    """The inference layer: argmax over the class scores."""
    with b.task(name) as t:
        t.dma_copy("scores", "l_res", CLASSES * 4)
        t.call_io(
            "lea.argmax",
            semantic="Always",
            data="l_res",
            n=CLASSES,
            out="class_out",
        )
        t.transition(next_task)
