"""Evaluation applications (Table 3 of the paper).

========== ====================== =========== ============================
module     semantics exercised    tasks       role in the evaluation
========== ====================== =========== ============================
uni_dma    Single                 3           Fig. 7a, Table 4, Fig. 8
uni_temp   Timely                 3           Fig. 7b, Table 4, Fig. 8
uni_lea    Always                 3           Fig. 7c, Table 4, Fig. 8
fir        Private/Single/Exclude 5           Fig. 10-13, correctness
weather    all three + blocks     11          Fig. 10/11, Table 5
========== ====================== =========== ============================

Each module exposes ``build(**params) -> Program`` and ``RESULT_VARS``,
the NV variables whose final values define the observable result for
correctness comparison against a continuous-power reference.
"""

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.apps import dnn, fir, fuzz, uni_dma, uni_lea, uni_temp, weather
from repro.ir import ast as A


@dataclass(frozen=True)
class AppSpec:
    """Registry entry for one evaluation application."""

    name: str
    build: Callable[..., A.Program]
    result_vars: Tuple[str, ...]
    description: str


APPS: Dict[str, AppSpec] = {
    "uni_dma": AppSpec(
        "uni_dma", uni_dma.build, uni_dma.RESULT_VARS,
        "NVM-to-NVM DMA uni-task app (Single semantics)",
    ),
    "uni_temp": AppSpec(
        "uni_temp", uni_temp.build, uni_temp.RESULT_VARS,
        "temperature-sensing uni-task app (Timely semantics)",
    ),
    "uni_lea": AppSpec(
        "uni_lea", uni_lea.build, uni_lea.RESULT_VARS,
        "LEA-accelerated uni-task app (Always semantics)",
    ),
    "fir": AppSpec(
        "fir", fir.build, fir.RESULT_VARS,
        "FIR filter with a DMA write-after-read hazard",
    ),
    "weather": AppSpec(
        "weather", weather.build, weather.RESULT_VARS,
        "11-task DNN weather classifier",
    ),
    "fuzz": AppSpec(
        "fuzz", fuzz.build, fuzz.RESULT_VARS,
        "fuzzer-generated program (JSON spec via build_kwargs)",
    ),
}

__all__ = [
    "APPS", "AppSpec",
    "dnn", "fir", "fuzz", "uni_dma", "uni_lea", "uni_temp", "weather",
]
