"""FIR filter application (phase 2, section 5.4).

The paper's correctness workload: "three DMA and one LEA operation
[...] The input and output of the application use the same buffer in
the non-volatile memory" — a deliberate write-after-read hazard through
DMA.  Inside one task:

1. DMA ``signal -> lea_in``   (NV -> volatile: ``Private`` at run time);
2. DMA ``coeffs -> lea_coef`` (NV -> volatile: ``Private``; the
   coefficients are constants, so the ``EaseIO/Op`` configuration
   annotates this copy ``Exclude``);
3. four windowed ``lea.fir`` calls in a loop (``Always``);
4. DMA ``lea_out -> signal``  (volatile -> NV: ``Single``) — this
   overwrites the *input* of step 1.

A power failure after step 4 re-executes the task.  Alpaca and InK
re-run step 1 against the already-filtered signal and double-filter it
(the Figure 12 incorrect executions).  EaseIO's ``Private`` copy of the
original signal and the ``Single`` skip of step 4 keep the result
correct under any failure placement.

Structure (5 tasks, 2 I/O functions — Table 3).
"""

from __future__ import annotations

from repro.core.api import ProgramBuilder
from repro.ir import ast as A

RESULT_VARS = ("signal", "checksum")

#: geometry shared by builder and tests
SIGNAL_LEN = 256
TAPS = 16
CHUNKS = 4
CHUNK_OUT = 60  # outputs per windowed LEA call
N_OUT = CHUNKS * CHUNK_OUT  # 240 filtered samples


def build(
    exclude_coeffs: bool = False,
    compute_cycles: int = 300,
    probe_words: int = 8,
) -> A.Program:
    """Build the FIR application.

    ``exclude_coeffs=True`` is the "EaseIO/Op" configuration: the
    constant-coefficient DMA is annotated ``Exclude`` so it skips the
    privatization process (section 4.3; only affects the EaseIO
    runtime — baselines ignore annotations).
    """
    b = ProgramBuilder("fir")
    b.nv_array(
        "signal",
        SIGNAL_LEN,
        init=[round(40 * ((i % 17) / 8.0 - 1.0)) for i in range(SIGNAL_LEN)],
    )
    b.nv_array("coeffs", TAPS, init=[((i * 3) % 9) - 4 for i in range(TAPS)])
    b.nv_array("probe", probe_words)
    b.nv("checksum", dtype="int32")
    b.lea_array("lea_in", SIGNAL_LEN)
    b.lea_array("lea_coef", TAPS)
    b.lea_array("lea_out", N_OUT)

    with b.task("t_init") as t:
        t.compute(compute_cycles, "configure")
        t.transition("t_filter")

    with b.task("t_filter") as t:
        # 1) input samples into LEA-RAM (NV -> V: Private)
        t.dma_copy("signal", "lea_in", SIGNAL_LEN * 2)
        # 2) filter coefficients (constant source: Exclude in /Op mode)
        t.dma_copy("coeffs", "lea_coef", TAPS * 2, exclude=exclude_coeffs)
        # 3) four windowed accelerator calls complete the filter
        for c in range(CHUNKS):
            t.call_io(
                "lea.fir",
                semantic="Always",
                samples="lea_in",
                samples_off=c * CHUNK_OUT,
                samples_len=CHUNK_OUT + TAPS - 1,
                coeffs="lea_coef",
                output="lea_out",
                output_off=c * CHUNK_OUT,
                output_len=CHUNK_OUT,
                n_out=CHUNK_OUT,
            )
        # 4) results overwrite the input buffer (V -> NV: Single) — WAR!
        t.dma_copy("lea_out", "signal", N_OUT * 2)
        # gain normalization after the write-back: this tail is the
        # window in which a power failure exposes the WAR hazard (the
        # write-back has landed, the task has not committed)
        t.compute(6 * compute_cycles, "normalize")
        t.transition("t_reduce")

    with b.task("t_reduce") as t:
        t.dma_copy("signal", "probe", probe_words * 2)
        t.transition("t_sum")

    with b.task("t_sum") as t:
        t.local("acc", dtype="int32")
        t.assign("acc", 0)
        with t.loop("i", probe_words):
            t.assign("acc", t.v("acc") + t.at("probe", t.v("i")))
        t.assign("checksum", t.v("acc"))
        t.transition("t_notify")

    with b.task("t_notify") as t:
        t.call_io(
            "radio",
            semantic="Single",
            args=[t.v("checksum")],
        )
        # post-send bookkeeping: ack bookkeeping + schedule update.  A
        # brown-out in this tail is where Single send semantics pay off:
        # EaseIO resumes without re-transmitting.
        t.compute(18 * compute_cycles, "link_log_update")
        t.halt()

    return b.build()


# ---------------------------------------------------------------------------
# Golden model for the correctness metric (Figure 12)
# ---------------------------------------------------------------------------

import numpy as np


def initial_signal() -> "np.ndarray":
    """The deterministic input waveform the builder installs."""
    return np.array(
        [round(40 * ((i % 17) / 8.0 - 1.0)) for i in range(SIGNAL_LEN)],
        dtype=np.int16,
    )


def golden_filtered_signal() -> "np.ndarray":
    """The signal buffer after exactly one filter pass.

    Samples ``[0, N_OUT)`` hold the FIR output (int32 accumulate,
    truncating int16 store, like the LEA); the tail keeps the original
    waveform.
    """
    sig = initial_signal()
    coeffs = np.array([((i * 3) % 9) - 4 for i in range(TAPS)], dtype=np.int16)
    out = sig.copy()
    # y[i] = sum_j h[j] x[i + j], int32 accumulate, truncating store:
    valid = np.array(
        [np.dot(sig[i : i + TAPS].astype(np.int64), coeffs.astype(np.int64))
         for i in range(N_OUT)],
        dtype=np.int64,
    )
    out[:N_OUT] = valid.astype(np.int16)
    return out


def check_consistency(state: "dict") -> bool:
    """Whether a finished run filtered the signal exactly once.

    The classic failure mode (baselines, Figure 12) is double
    filtering: a power failure after the write-back re-runs the input
    DMA against already-filtered data.
    """
    golden = golden_filtered_signal()
    signal = np.asarray(state["signal"], dtype=np.int16)
    if not np.array_equal(signal, golden):
        return False
    return int(state["checksum"]) == int(np.sum(golden[:8], dtype=np.int64))
