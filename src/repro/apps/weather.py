"""DNN-based weather classification application (phase 2, section 5.4).

The paper's end-to-end workload (Figure 9), divided into 11 tasks:

1.  ``t_start``    — boot configuration;
2.  ``t_sense``    — a ``Single`` I/O block grouping a ``Timely``
    temperature read (10 ms freshness) with an ``Always`` humidity
    read: the two samples must be taken together, and once the pair
    has been captured the whole block never repeats;
3.  ``t_capture``  — image capture (``Single``: a successful capture
    need not be repeated), simulated as in the paper;
4.  ``t_fill``     — expands the captured luminance into the 8x8 input
    image (CPU writes into NV — protected by regional privatization
    under EaseIO);
5-9. DNN layers (conv -> ReLU -> conv -> FC -> argmax) on LEA + DMA,
    like TAILS; single- or double-buffered activations (Table 5);
10. ``t_send``     — transmit (temperature, humidity, class) once
    (``Single``);
11. ``t_done``     — teardown.

I/O functions: temp, humidity, camera, the LEA kernels, radio — five
classes (Table 3).
"""

from __future__ import annotations

from repro.apps import dnn
from repro.core.api import ProgramBuilder
from repro.ir import ast as A

RESULT_VARS = ("class_out", "sent_count", "scores", "luminance")


def build(
    buffers: str = "single",
    exclude_weights: bool = False,
    compute_cycles: int = 300,
    temp_interval_ms: float = 10.0,
) -> A.Program:
    """Build the weather classifier.

    ``buffers`` selects the activation discipline: ``"single"`` (one
    shared NV buffer, WAR through DMA — safe only under EaseIO) or
    ``"double"`` (alternating buffers, the conventional workaround).
    ``exclude_weights=True`` is the "EaseIO/Op" configuration: constant
    weight/kernel DMAs are annotated ``Exclude``.
    """
    if buffers not in ("single", "double"):
        raise ValueError(f"buffers must be 'single' or 'double', got {buffers!r}")
    b = ProgramBuilder("weather")
    b.nv("temp_val", dtype="float64")
    b.nv("hum_val", dtype="float64")
    b.nv("luminance", dtype="float64")
    b.nv("class_out", dtype="int16")
    b.nv("sent_count", dtype="int16")
    plan = dnn.declare_network(b, single_buffer=(buffers == "single"))

    with b.task("t_start") as t:
        t.compute(compute_cycles, "boot_config")
        t.transition("t_sense")

    with b.task("t_sense") as t:
        with t.io_block("Single"):
            t.call_io(
                "temp",
                semantic="Timely",
                interval_ms=temp_interval_ms,
                out="temp_val",
            )
            t.call_io("humidity", semantic="Always", out="hum_val")
        t.compute(3 * compute_cycles, "calibrate_readings")
        t.transition("t_capture")

    with b.task("t_capture") as t:
        t.call_io("camera", semantic="Single", out="luminance")
        # crop/normalize the captured frame: work a successful capture
        # never repeats under EaseIO, but baselines redo camera + this
        t.compute(12 * compute_cycles, "demosaic_crop")
        t.transition("t_fill")

    with b.task("t_fill") as t:
        # expand the luminance into a deterministic 8x8 test card
        with t.loop("i", dnn.IMG * dnn.IMG):
            t.assign(
                t.at("act_a", t.v("i")),
                (t.v("luminance") + t.v("i") * 3) % 97 - 48,
            )
        t.transition("t_conv1")

    dnn.conv_task(
        b, "t_conv1", "t_relu", plan,
        layer_index=0, side=dnn.IMG, ksize=dnn.K1, kernel="k1",
        exclude_weights=exclude_weights,
    )
    dnn.relu_task(
        b, "t_relu", "t_conv2", plan,
        layer_index=1, count=dnn.C1_OUT * dnn.C1_OUT,
    )
    dnn.conv_task(
        b, "t_conv2", "t_fc", plan,
        layer_index=2, side=dnn.C1_OUT, ksize=dnn.K2, kernel="k2",
        exclude_weights=exclude_weights,
    )
    dnn.fc_task(
        b, "t_fc", "t_infer", plan,
        layer_index=3, exclude_weights=exclude_weights,
    )
    dnn.infer_task(b, "t_infer", "t_send")

    with b.task("t_send") as t:
        t.call_io(
            "radio",
            semantic="Single",
            args=[t.v("temp_val"), t.v("hum_val"), t.v("class_out")],
        )
        t.compute(4 * compute_cycles, "link_log_update")
        t.assign("sent_count", t.v("sent_count") + 1)
        t.transition("t_done")

    with b.task("t_done") as t:
        t.compute(compute_cycles, "teardown")
        t.halt()

    return b.build()


# ---------------------------------------------------------------------------
# Golden model for the correctness metric
# ---------------------------------------------------------------------------

import numpy as np


def fill_image(luminance: float) -> "np.ndarray":
    """The t_fill expansion, replicated with the interpreter's casts."""
    img = np.empty(dnn.IMG * dnn.IMG, dtype=np.int16)
    for i in range(img.size):
        img[i] = np.int16((luminance + i * 3) % 97 - 48)
    return img


def golden_inference(luminance: float) -> "dict":
    """Reference DNN output for a captured luminance.

    Replicates the five layers in numpy with the LEA's fixed-point
    behaviour (int32 accumulate, truncating int16 stores), so a
    finished run's ``scores``/``class_out`` can be checked against
    whatever scene the camera actually sampled — the paper's
    "execution correctness" metric is about memory consistency, not
    about two runs seeing identical environments.
    """
    k1 = np.array([1, 0, -1, 2, 0, -2, 1, 0, -1], dtype=np.int16).reshape(3, 3)
    k2 = np.array([0, 1, 0, 1, -4, 1, 0, 1, 0], dtype=np.int16).reshape(3, 3)
    fc_w = np.array(
        [((i * 7 + 3) % 11) - 5 for i in range(dnn.CLASSES * dnn.FLAT)],
        dtype=np.int16,
    ).reshape(dnn.CLASSES, dnn.FLAT)

    def conv(img2d: "np.ndarray", ker: "np.ndarray") -> "np.ndarray":
        side = img2d.shape[0]
        out_side = side - ker.shape[0] + 1
        out = np.empty((out_side, out_side), dtype=np.int32)
        for r in range(out_side):
            for c in range(out_side):
                window = img2d[r : r + 3, c : c + 3].astype(np.int32)
                out[r, c] = np.sum(window * ker.astype(np.int32))
        return out.astype(np.int16)

    x = fill_image(luminance).reshape(dnn.IMG, dnn.IMG)
    x = conv(x, k1)                      # 6x6
    x = np.maximum(x, 0).astype(np.int16)  # relu
    x = conv(x, k2)                      # 4x4
    flat = x.reshape(-1).astype(np.int32)
    scores = (fc_w.astype(np.int32) @ flat).astype(np.int32)
    return {"scores": scores, "class_out": int(np.argmax(scores))}


def check_consistency(state: "dict") -> bool:
    """Whether a finished run's NV state is internally consistent.

    ``state`` is the :data:`RESULT_VARS` snapshot.  Consistent means:
    the stored scores and class are exactly what the DNN computes for
    the stored luminance, and the result was transmitted once.
    """
    golden = golden_inference(float(state["luminance"]))
    return (
        int(state["sent_count"]) == 1
        and int(state["class_out"]) == golden["class_out"]
        and np.array_equal(np.asarray(state["scores"], dtype=np.int32),
                           golden["scores"])
    )
