"""EaseIO: efficient and safe I/O operations for intermittent systems.

A full-system reproduction of the EuroSys '23 paper: a simulated
FRAM-class batteryless board (:mod:`repro.hw`), an intermittent
execution kernel (:mod:`repro.kernel`), a task IR with the EaseIO
compiler front-end (:mod:`repro.ir`), the EaseIO runtime plus the
Alpaca and InK baselines (:mod:`repro.runtimes`), the paper's
evaluation applications (:mod:`repro.apps`) and the benchmark harness
regenerating every table and figure (:mod:`repro.bench`).

Quickstart::

    from repro.core import ProgramBuilder, run_program
    from repro.kernel import UniformFailureModel

    b = ProgramBuilder("hello")
    b.nv("reading")
    with b.task("sense") as t:
        t.call_io("temp", semantic="Timely", interval_ms=10, out="reading")
        t.halt()
    result = run_program(b.build(), runtime="easeio",
                         failure_model=UniformFailureModel(seed=1))
    print(result.metrics.as_row())
"""

from repro.core import E, ProgramBuilder, TaskBuilder, run_program
from repro.errors import (
    NonTermination,
    PowerFailure,
    ProgramError,
    ReproError,
    TransformError,
)

__version__ = "1.0.0"

__all__ = [
    "E",
    "NonTermination",
    "PowerFailure",
    "ProgramBuilder",
    "ProgramError",
    "ReproError",
    "TaskBuilder",
    "TransformError",
    "run_program",
    "__version__",
]
