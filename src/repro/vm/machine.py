"""The stepped VM: flat bytecode plus explicit, snapshotable state.

A :class:`VMCode` is the unit the lowering compiler produces for one
``(Program, runtime class, transform options)`` triple bound to one
runtime instance.  Its instruction stream is a flat list of tuples:

``(duration_us, step, time_key, category, energy_uj, effect, draw_mw)``
    a *charged* instruction: the precomputed :class:`Step` is charged
    against clock/meter/capacitor exactly like the generator path
    (``draw_mw`` prices truncated windows at a power failure), and
    ``effect(now_us) -> next_pc`` applies the statement's memory and
    trace effects afterwards;

``(None, None, None, None, None, effect, None)``
    a *control* instruction: no time passes, ``effect(now_us)`` just
    computes the next pc (dispatch, loop latches, branch joins).

``effect`` returning :data:`HALT` (-1) ends the run.

Unlike the generator interpreter, the machine state between two
instructions is a plain value: the pc, the loop registers, the scratch
slots, the per-sequence attempt counts and executed-site set, plus the
simulated memory/clock/meter/RNG state.  :meth:`VM.snapshot` captures
all of it and :meth:`VM.restore` reinstates it, which is what makes a
power failure "drop volatile state, reload pc from the last commit"
and what makes pause/resume (and deterministic replay) possible at any
step boundary.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.kernel.stats import Step

#: sentinel next-pc meaning "the program halted"
HALT = -1

#: pc of the dispatch instruction (every reboot resumes here)
DISPATCH_PC = 0


class VMCode:
    """Flat bytecode for one runtime instance.

    The instruction tuples close over the instance's typed cells, byte
    views and bound trace/peripheral methods, so executing them touches
    the same simulated hardware the generator interpreter would — just
    without re-walking the AST or re-dispatching runtime policy.
    """

    __slots__ = ("code", "n_regs", "n_scratch", "runtime_name", "program_name")

    def __init__(
        self,
        code: List[tuple],
        n_regs: int,
        n_scratch: int,
        runtime_name: str,
        program_name: str,
    ) -> None:
        self.code = code
        self.n_regs = n_regs
        self.n_scratch = n_scratch
        self.runtime_name = runtime_name
        self.program_name = program_name

    def __len__(self) -> int:
        return len(self.code)


class VM:
    """Executable VM state bound to one runtime instance.

    ``regs`` (loop counters) and ``scratch`` (intra-statement
    temporaries) are fixed lists whose *identity* the lowered effects
    close over; mutate them in place, never rebind.
    """

    __slots__ = ("vmcode", "runtime", "regs", "scratch", "pc", "snapshots_taken")

    def __init__(
        self,
        vmcode: VMCode,
        runtime,
        regs: Optional[List[int]] = None,
        scratch: Optional[List[Any]] = None,
    ) -> None:
        self.vmcode = vmcode
        self.runtime = runtime
        # the lowerer passes in the exact list objects its effect
        # closures captured; standalone construction allocates fresh
        self.regs = regs if regs is not None else [0] * max(1, vmcode.n_regs)
        self.scratch = (
            scratch if scratch is not None else [None] * max(1, vmcode.n_scratch)
        )
        while len(self.regs) < max(1, vmcode.n_regs):
            self.regs.append(0)
        self.pc = DISPATCH_PC
        self.snapshots_taken = 0

    # -- power-failure model -------------------------------------------------

    def on_reboot(self) -> None:
        """Drop volatile VM state: the pc reloads from the last commit.

        The committed task cursor lives in simulated FRAM; the dispatch
        instruction re-reads it, so "reboot" is just pc := DISPATCH_PC.
        Loop registers and scratch are dead values — the new attempt
        rewrites them before any use.
        """
        self.pc = DISPATCH_PC

    # -- snapshot / restore --------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Capture the complete machine state as a plain value."""
        rt = self.runtime
        m = rt.machine
        tk = m.timekeeper
        tr = m.trace
        self.snapshots_taken += 1
        return {
            "pc": self.pc,
            "regs": list(self.regs),
            "scratch": list(self.scratch),
            "attempts": dict(rt._attempts),
            "sites": set(rt._executed_sites),
            "mem": {r.name: r.snapshot() for r in m.space._regions},
            "now_us": m.clock.now_us,
            "meter": dict(m.meter._by_category),
            "periph_rng": m.peripherals.rng.bit_generator.state,
            "periph_counts": {
                name: m.peripherals.get(name).invocations
                for name in m.peripherals.names()
            },
            "tk": (tk._skew_us, tk.reads, tk.dark_periods),
            "tk_rng": tk._rng.bit_generator.state,
            "cap_v": m.capacitor.voltage,
            "dma": (m.dma.transfer_count, m.dma.bytes_moved),
            "lea": m.lea.invocations,
            "trace_events": list(tr.events),
            "trace_counts": dict(tr._counts),
            "trace_failures": list(tr.failures),
            "trace_last_io": tr._last_io_us,
        }

    def restore(self, snap: Dict[str, Any]) -> None:
        """Reinstate a snapshot taken on this runtime instance."""
        rt = self.runtime
        m = rt.machine
        self.pc = snap["pc"]
        self.regs[:] = snap["regs"]
        self.scratch[:] = snap["scratch"]
        rt._attempts.clear()
        rt._attempts.update(snap["attempts"])
        rt._executed_sites.clear()
        rt._executed_sites.update(snap["sites"])
        for r in m.space._regions:
            r.restore(snap["mem"][r.name])
        m.clock._now_us = snap["now_us"]
        m.meter._by_category.clear()
        m.meter._by_category.update(snap["meter"])
        m.peripherals.rng.bit_generator.state = snap["periph_rng"]
        for name, count in snap["periph_counts"].items():
            m.peripherals.get(name).invocations = count
        tk = m.timekeeper
        tk._skew_us, tk.reads, tk.dark_periods = snap["tk"]
        tk._rng.bit_generator.state = snap["tk_rng"]
        m.capacitor.voltage = snap["cap_v"]
        m.dma.transfer_count, m.dma.bytes_moved = snap["dma"]
        m.lea.invocations = snap["lea"]
        tr = m.trace
        tr.events[:] = snap["trace_events"]
        tr._counts.clear()
        tr._counts.update(snap["trace_counts"])
        tr.failures[:] = snap["trace_failures"]
        tr._last_io_us = snap["trace_last_io"]

    # -- stand-alone stepping (tests, tools) ---------------------------------

    def drive(self, max_steps: Optional[int] = None) -> int:
        """Step the VM without a failure model; returns charged steps.

        Charges each instruction's time and energy against the bound
        machine (same arithmetic as the executor, no failures, no
        capacitor) and applies its effect.  Stops after ``max_steps``
        charged steps or at :data:`HALT`.  This is the pause/resume
        surface: call with a budget, :meth:`snapshot`, resume later.
        """
        rt = self.runtime
        m = rt.machine
        code = self.vmcode.code
        clock = m.clock
        meter_add = m.meter.add
        now = clock.now_us
        done = 0
        pc = self.pc
        while pc >= 0:
            if max_steps is not None and done >= max_steps:
                break
            ins = code[pc]
            dur = ins[0]
            if dur is None:
                pc = ins[5](now)
                continue
            now += dur
            clock._now_us = now
            meter_add(ins[3], ins[4])
            pc = ins[5](now)
            done += 1
        self.pc = pc
        clock._now_us = now
        return done

    @property
    def halted(self) -> bool:
        return self.pc == HALT
