"""Lowering: interpreter plans -> flat register-style bytecode.

The :class:`Lowerer` walks a runtime's program once and produces the
flat instruction list described in :mod:`repro.vm.machine`.  Everything
the generator interpreter re-derives per statement — access costs, step
kinds, energy categories, privatization policy, lock/guard wiring, task
dispatch — is resolved *here*, at compile time, and baked into
specialized instruction tuples:

* expression trees compile to Python lambdas over bound typed cells
  (``float(g0()) + 3.0``) with the reference evaluator's exact numeric
  semantics (``float()`` wraps on reads, ``//`` rounds through ``int``,
  comparisons produce ``1.0/0.0``, boolean operators short-circuit);
* loop variables become VM registers (``R[i]``), free to access, dying
  with the attempt — the interpreter's register-allocation stance;
* each runtime contributes its policy lowering through the
  ``vm_lower_*`` hooks on its class (Alpaca/InK privatization
  prologues and commit write-backs, Samoyed's checkpoint/restore
  instruction forms, EaseIO's runtime DMA-semantics branch network),
  so policy is dispatched zero times per executed statement;
* per-instruction charge data (duration, preallocated ``Step``,
  stats time-key, energy at the category's power draw) is precomputed
  so the executor's hot loop does no lookups.

Costs are computed with the same classification the interpreter uses
(:data:`_ACC_NV`/:data:`_ACC_VOL`/:data:`_ACC_DYN` entries, loop
variables skipped); classifications that the interpreter resolves "at
run time" are safely resolved here because the environment's variable
population is fixed after runtime construction.

Anything the lowerer does not understand — subclassed AST nodes,
unknown statements, shape mismatches — raises :class:`Unlowerable`,
and :func:`lower` returns ``None`` so the caller falls back to the
generator interpreter (which then reproduces the reference behaviour,
including its error paths).
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PeripheralError, ProgramError, ReproError
from repro.hw import trace as T
from repro.ir import ast as A
from repro.kernel.executor import IntermittentExecutor
from repro.kernel.stats import APP, IO, OVERHEAD, Step
from repro.runtimes.base import _ACC_NV, _ACC_VOL, _count_gettime
from repro.vm.machine import DISPATCH_PC, HALT, VM, VMCode


class Unlowerable(Exception):
    """The program uses a construct the VM compiler does not support."""


class _Label:
    """A forward-reference instruction address, resolved at finalize."""

    __slots__ = ("pc",)

    def __init__(self) -> None:
        self.pc: Optional[int] = None


class Ctx:
    """Per-task lowering context: redirects and loop registers."""

    __slots__ = ("redirects", "loop_regs", "loop_order")

    def __init__(self, redirects: Dict[str, str]) -> None:
        self.redirects = redirects
        self.loop_regs: Dict[str, int] = {}
        self.loop_order: List[int] = []


#: statement node types with first-class lowering (exact-type matched;
#: subclasses fall back to the generator interpreter)
_CMP_SRC = {"<": "<", "<=": "<=", ">": ">", ">=": ">=", "==": "==", "!=": "!="}
_BIN_SRC = {"+": "+", "-": "-", "*": "*", "/": "/", "%": "%"}


class Lowerer:
    """Compiles one runtime instance's program into a :class:`VM`."""

    def __init__(self, runtime) -> None:
        self.rt = runtime
        self.machine = runtime.machine
        self.env = runtime.env
        self.cost = runtime.machine.cost
        self.program = runtime.program
        # instruction spec list: (dur, kind, cat, build) where
        # build() -> effect; dur None marks a control instruction
        self.specs: List[tuple] = []
        # registers/scratch: the lists the effects close over (grown
        # in place, identity never changes)
        self.R: List[int] = []
        self.S: List[object] = [None] * 4
        self.max_regs = 0
        self._emit_tr = runtime.machine.trace.emit
        self._power = IntermittentExecutor._power_table(runtime.machine)
        self._cpu_mw = self.cost.power_cpu_mw

    # ==== spec stream primitives ==========================================

    def pc(self) -> int:
        return len(self.specs)

    def emit(self, dur: float, kind: str, cat: str, build: Callable) -> int:
        idx = len(self.specs)
        self.specs.append((dur, kind, cat, build))
        return idx

    def ctl(self, build: Callable) -> int:
        idx = len(self.specs)
        self.specs.append((None, None, None, build))
        return idx

    def label(self) -> _Label:
        return _Label()

    def mark(self, lab: _Label) -> None:
        lab.pc = len(self.specs)

    def jump(self, lab: _Label) -> None:
        def build(_l=lab):
            def eff(now, _n=_l.pc):
                return _n
            return eff
        self.ctl(build)

    def emit_cost_step(self, step: Step) -> None:
        """A charged instruction with no effect (cost-only work)."""
        idx = self.emit(step.duration_us, step.kind, step.category, None)
        def build(_n=idx + 1):
            def eff(now, _n=_n):
                return _n
            return eff
        self.specs[idx] = (step.duration_us, step.kind, step.category, build)

    # ==== cost model (static replica of the interpreter's) ================

    def entries_cost(self, entries: tuple, ctx: Ctx) -> float:
        cost = self.cost
        env = self.env
        program = self.program
        total = 0.0
        for name, cls in entries:
            if name in ctx.loop_regs:
                continue  # register-allocated
            if cls == _ACC_NV:
                total += cost.read_nv_us
            elif cls == _ACC_VOL:
                total += cost.read_volatile_us
            else:
                if not program.has_decl(name) and name not in env._storage:
                    continue
                if env.is_nv(name):
                    total += cost.read_nv_us
                else:
                    total += cost.read_volatile_us
        return total

    def expr_cost(self, expr: A.Expr, ctx: Ctx) -> float:
        total = self.entries_cost(self.rt._access_entries(expr.reads()), ctx)
        n_gettime = _count_gettime(expr)
        if n_gettime:
            total += n_gettime * self.cost.timekeeper_read_us
        return total

    # ==== cells, views, addresses =========================================

    def _scalar(self, name: str):
        sym = self.env.symbol(name, follow_redirect=False)
        if sym.length > 1:
            raise Unlowerable(f"array {name!r} accessed without an index")
        return self.env.cell(name, follow_redirect=False)

    def _array(self, name: str):
        return self.env.array(name, follow_redirect=False)

    def scalar_get(self, name: str) -> Callable:
        """A zero-arg reader for a scalar cell, as fast as available.

        On the fast path the cell's typed view is stable for the
        machine's lifetime, so ``partial(view.item, 0)`` reads the
        element with a single C-level call — no Python frame.  Falls
        back to the bound ``Cell.get`` when no view exists.
        """
        cell = self._scalar(name)
        view = getattr(cell, "_view", None)
        if view is not None:
            return partial(view.item, 0)
        return cell.get

    def copy_pair(self, src: str, dst: str) -> Tuple[np.ndarray, np.ndarray]:
        """(dst_view, src_view) byte views for a word copy (dst[:] = src)."""
        s = self.env.symbol(src, follow_redirect=False)
        d = self.env.symbol(dst, follow_redirect=False)
        if (s.dtype, s.length) != (d.dtype, d.length):
            raise Unlowerable(f"copy shape mismatch: {src!r} vs {dst!r}")
        space = self.machine.space
        return (space.view(d.addr, d.nbytes), space.view(s.addr, s.nbytes))

    def words_of(self, name: str) -> int:
        return max(1, self.env.symbol(name, follow_redirect=False).nbytes // 2)

    def addr_fn(self, ref, ctx: Ctx):
        """Address computation for a DMA endpoint (no redirect)."""
        sym = self.env.symbol(ref.name, follow_redirect=False)
        base = sym.addr
        itemsize = int(np.dtype(sym.dtype).itemsize)
        off = ref.offset
        if type(off) is A.Const:
            addr = base + int(off.value) * itemsize
            def static_fn(now, _a=addr):
                return _a
            return static_fn
        ofn = self.compile_expr(off, ctx)
        def dyn_fn(now, _b=base, _i=itemsize, _o=ofn):
            return _b + int(_o(now)) * _i
        return dyn_fn

    # ==== expression compiler =============================================

    def compile_expr(self, expr: A.Expr, ctx: Ctx) -> Callable[[float], float]:
        binds: Dict[str, object] = {}
        src = self._gen(expr, ctx, binds)
        if not binds and "R[" not in src and "now" not in src:
            value = eval(src, {})  # constant fold
            def const_fn(now, _v=value):
                return _v
            return const_fn
        names = list(binds)
        defaults = "".join(f", {n}={n}" for n in names)
        lam = f"lambda now, R=R{defaults}: ({src})"
        ns = {"R": self.R}
        ns.update(binds)
        return eval(lam, ns)

    def _bind(self, binds: Dict[str, object], obj: object) -> str:
        name = f"_b{len(binds)}"
        binds[name] = obj
        return name

    def _gen(self, expr: A.Expr, ctx: Ctx, binds: Dict[str, object]) -> str:
        t = type(expr)
        if t is A.Const:
            return repr(float(expr.value))
        if t is A.Var:
            reg = ctx.loop_regs.get(expr.name)
            if reg is not None:
                return f"float(R[{reg}])"
            actual = ctx.redirects.get(expr.name, expr.name)
            g = self._bind(binds, self.scalar_get(actual))
            return f"float({g}())"
        if t is A.Index:
            actual = ctx.redirects.get(expr.name, expr.name)
            g = self._bind(binds, self._array(actual).get)
            idx = self._gen(expr.index, ctx, binds)
            return f"float({g}(int({idx})))"
        if t is A.BinOp:
            lhs = self._gen(expr.lhs, ctx, binds)
            rhs = self._gen(expr.rhs, ctx, binds)
            op = expr.op
            if op in _BIN_SRC:
                return f"({lhs} {op} {rhs})"
            if op == "//":
                return f"float(int({lhs} // {rhs}))"
            if op in ("min", "max"):
                return f"{op}({lhs}, {rhs})"
            raise Unlowerable(f"unknown binary op {op!r}")
        if t is A.Cmp:
            lhs = self._gen(expr.lhs, ctx, binds)
            rhs = self._gen(expr.rhs, ctx, binds)
            op = _CMP_SRC.get(expr.op)
            if op is None:
                raise Unlowerable(f"unknown comparison {expr.op!r}")
            return f"(1.0 if {lhs} {op} {rhs} else 0.0)"
        if t is A.BoolOp:
            parts = [f"({self._gen(op, ctx, binds)} != 0.0)" for op in expr.operands]
            joiner = " and " if expr.op == "and" else " or "
            return f"(1.0 if {joiner.join(parts)} else 0.0)"
        if t is A.Not:
            x = self._gen(expr.operand, ctx, binds)
            return f"(0.0 if {x} != 0.0 else 1.0)"
        if t is A.GetTime:
            g = self._bind(binds, self.machine.timekeeper.read)
            return f"{g}(now)"
        raise Unlowerable(f"unknown expression {type(expr).__name__}")

    def make_store(self, target: A.LValue, ctx: Ctx):
        """fn(value, now) replicating ``_store`` (value already computed)."""
        if type(target) is A.Var:
            actual = ctx.redirects.get(target.name, target.name)
            setter = self._scalar(actual).set
            def store_v(value, now, _s=setter):
                _s(value)
            return store_v
        if type(target) is A.Index:
            actual = ctx.redirects.get(target.name, target.name)
            aset = self._array(actual).set
            ifn = self.compile_expr(target.index, ctx)
            def store_i(value, now, _a=aset, _i=ifn):
                _a(int(_i(now)), value)
            return store_i
        raise Unlowerable(f"invalid assignment target {target!r}")

    # ==== site keys ========================================================

    def key_fn(self, ctx: Ctx):
        idxs = tuple(ctx.loop_order)
        if not idxs:
            def no_loops():
                return ()
            return no_loops
        src = "lambda R=R: (" + ",".join(f"R[{i}]" for i in idxs) + ",)"
        return eval(src, {"R": self.R})

    # ==== statements =======================================================

    def begin_task(self, task: A.Task) -> Ctx:
        """Fresh per-task context with the runtime's static redirects."""
        return Ctx(dict(self.rt.vm_redirects(task)))

    def lower_stmts(self, stmts: Sequence[A.Stmt], ctx: Ctx) -> None:
        for stmt in stmts:
            self.lower_stmt(stmt, ctx)

    def lower_stmt(self, stmt: A.Stmt, ctx: Ctx) -> None:
        t = type(stmt)
        if t is A.Assign:
            self._lower_assign(stmt, ctx)
        elif t is A.Compute:
            self._lower_compute(stmt)
        elif t is A.IOCall:
            self._lower_io(stmt, ctx)
        elif t is A.IOBlock:
            # un-transformed block (baselines): plain sequencing
            self.lower_stmts(stmt.body, ctx)
        elif t is A.DMACopy:
            self.rt.vm_lower_dma(self, stmt, ctx)
        elif t is A.If:
            self._lower_if(stmt, ctx)
        elif t is A.Loop:
            self._lower_loop(stmt, ctx)
        elif t is A.RegionBoundary:
            self._lower_region_boundary(stmt)
        elif t is A.CopyWords:
            self._lower_copy_words(stmt)
        elif t is A.Marker:
            self._lower_marker(stmt)
        elif t is A.TransitionTo:
            self.rt.vm_lower_commit(self, self._cur_task, stmt.task)
        elif t is A.Halt:
            self.rt.vm_lower_commit(self, self._cur_task, None)
        else:
            raise Unlowerable(f"unsupported statement {type(stmt).__name__}")

    def _lower_assign(self, stmt: A.Assign, ctx: Ctx) -> None:
        cost = self.cost
        target = A.lvalue_access(stmt.target)
        duration = (
            cost.assign_us
            + self.expr_cost(stmt.expr, ctx)
            + self.entries_cost(self.rt._access_entries(stmt.writes()), ctx)
        )
        tname = target.name
        if tname in ctx.loop_regs:
            category = "cpu"
        else:
            cls = self.rt._classify_access(tname)
            if cls == _ACC_NV:
                category = "fram"
            elif cls == _ACC_VOL:
                category = "cpu"
            else:
                category = "fram" if self.rt._is_nv_name(tname) else "cpu"
        kind = OVERHEAD if stmt.synthetic else APP
        expr_fn = self.compile_expr(stmt.expr, ctx)
        if type(stmt.target) is A.Var:
            actual = ctx.redirects.get(tname, tname)
            setter = self._scalar(actual).set
            idx = self.emit(duration, kind, category, None)
            def build(_s=setter, _e=expr_fn, _n=idx + 1):
                def eff(now, _s=_s, _e=_e, _n=_n):
                    _s(_e(now))
                    return _n
                return eff
        elif type(stmt.target) is A.Index:
            # fused indexed store: skip the make_store trampoline frame
            actual = ctx.redirects.get(stmt.target.name, stmt.target.name)
            aset = self._array(actual).set
            ifn = self.compile_expr(stmt.target.index, ctx)
            idx = self.emit(duration, kind, category, None)
            def build(_a=aset, _i=ifn, _e=expr_fn, _n=idx + 1):
                def eff(now, _a=_a, _i=_i, _e=_e, _n=_n):
                    value = _e(now)
                    _a(int(_i(now)), value)
                    return _n
                return eff
        else:
            store = self.make_store(stmt.target, ctx)
            idx = self.emit(duration, kind, category, None)
            def build(_st=store, _e=expr_fn, _n=idx + 1):
                def eff(now, _st=_st, _e=_e, _n=_n):
                    _st(_e(now), now)
                    return _n
                return eff
        self.specs[idx] = (duration, kind, category, build)

    def _lower_compute(self, stmt: A.Compute) -> None:
        remaining = stmt.cycles * self.cost.compute_unit_us
        chunk = 200.0
        while remaining > 0:
            slice_us = min(chunk, remaining)
            self.emit_cost_step(Step(slice_us, APP, "cpu"))
            remaining -= slice_us

    def _lower_if(self, stmt: A.If, ctx: Ctx) -> None:
        duration = self.cost.branch_us + self.expr_cost(stmt.cond, ctx)
        kind = OVERHEAD if stmt.synthetic else APP
        cond_fn = self.compile_expr(stmt.cond, ctx)
        else_l = self.label()
        idx = self.emit(duration, kind, "cpu", None)
        def build(_c=cond_fn, _t=idx + 1, _el=else_l):
            def eff(now, _c=_c, _t=_t, _f=_el.pc):
                return _t if _c(now) != 0.0 else _f
            return eff
        self.specs[idx] = (duration, kind, "cpu", build)
        self.lower_stmts(stmt.then, ctx)
        if stmt.orelse:
            end_l = self.label()
            self.jump(end_l)
            self.mark(else_l)
            self.lower_stmts(stmt.orelse, ctx)
            self.mark(end_l)
        else:
            self.mark(else_l)

    def _lower_loop(self, stmt: A.Loop, ctx: Ctx) -> None:
        if stmt.count <= 0:
            return
        reg = len(ctx.loop_order)
        self.max_regs = max(self.max_regs, reg + 1)
        while len(self.R) <= reg:
            self.R.append(0)
        entry_idx = self.ctl(None)
        def entry_build(_r=reg, _n=entry_idx + 1):
            def eff(now, R=self.R, _r=_r, _n=_n):
                R[_r] = 0
                return _n
            return eff
        self.specs[entry_idx] = (None, None, None, entry_build)
        iter_pc = self.pc()
        self.emit_cost_step(Step(self.cost.loop_iter_us, APP, "cpu"))
        ctx.loop_regs[stmt.var] = reg
        ctx.loop_order.append(reg)
        self.lower_stmts(stmt.body, ctx)
        ctx.loop_order.pop()
        del ctx.loop_regs[stmt.var]
        latch_idx = self.ctl(None)
        def latch_build(_r=reg, _c=stmt.count, _it=iter_pc, _n=latch_idx + 1):
            def eff(now, R=self.R, _r=_r, _c=_c, _it=_it, _n=_n):
                v = R[_r] + 1
                R[_r] = v
                return _it if v < _c else _n
            return eff
        self.specs[latch_idx] = (None, None, None, latch_build)

    def _lower_marker(self, stmt: A.Marker) -> None:
        detail = dict(stmt.detail)
        idx = self.emit(0.0, OVERHEAD, "cpu", None)
        def build(_d=detail, _k=stmt.kind, _n=idx + 1):
            def eff(now, _e=self._emit_tr, _k=_k, _d=_d, _n=_n):
                _e(now, _k, **_d)
                return _n
            return eff
        self.specs[idx] = (0.0, OVERHEAD, "cpu", build)

    # -- I/O ----------------------------------------------------------------

    def _lower_io(self, call: A.IOCall, ctx: Ctx) -> None:
        rt = self.rt
        if call.is_lea:
            duration = rt._lea_cost(call)
            category = "lea"
        else:
            periph = self.machine.peripherals.get(call.func)
            duration = periph.duration_us
            per_word = getattr(periph, "per_word_us", None)
            if per_word is not None:
                duration += per_word * len(call.args)
            category = call.func
        store = None if call.out is None else self.make_store(call.out, ctx)
        kf = self.key_fn(ctx)
        seq_get = self.scalar_get("__task_seq")
        sites = rt._executed_sites
        semantic = call.annotation.semantic.value
        idx = self.emit(duration, IO, category, None)
        if call.is_lea:
            def invoke(now, _rt=rt, _c=call):
                return _rt._invoke_lea(_c)
        else:
            arg_fns = [self.compile_expr(a, ctx) for a in call.args]
            pinv = self.machine.peripherals.invoke
            def invoke(now, _p=pinv, _f=call.func, _a=arg_fns):
                return _p(_f, now, [fn(now) for fn in _a]).value
        def build(
            _inv=invoke, _st=store, _kf=kf, _sg=seq_get, _sites=sites,
            _f=call.func, _site=call.site, _sem=semantic, _d=duration,
            _e=self._emit_tr, _n=idx + 1,
        ):
            def eff(now, _inv=_inv, _st=_st, _kf=_kf, _sg=_sg, _sites=_sites,
                    _f=_f, _site=_site, _sem=_sem, _d=_d, _e=_e, _n=_n):
                seq = int(_sg())
                key = (seq, _site, _kf())
                repeat = key in _sites
                _sites.add(key)
                value = _inv(now)
                if _st is not None and value is not None:
                    _st(value, now)
                _e(
                    now, T.IO_EXEC, func=_f, site=_site, repeat=repeat,
                    value=value, semantic=_sem, seq=seq, loop=key[2],
                    duration_us=_d,
                )
                return _n
            return eff
        self.specs[idx] = (duration, IO, category, build)

    # -- DMA ----------------------------------------------------------------

    def make_transfer_raw(
        self, site: str, nbytes: int, phase: str, mark_site: bool,
        semantic: str, duration: float, kf: Callable,
    ):
        """fn(now, src, dst, forced): transfer + DMA_EXEC trace (EaseIO)."""
        seq_get = self.scalar_get("__task_seq")
        sites = self.rt._executed_sites
        xfer = self.machine.dma.transfer
        def transfer_raw(
            now, src, dst, forced, _kf=kf, _sg=seq_get, _sites=sites,
            _x=xfer, _site=site, _nb=nbytes, _ph=phase, _mark=mark_site,
            _sem=semantic, _d=duration, _e=self._emit_tr,
        ):
            seq = int(_sg())
            key = (seq, _site, _kf())
            repeat = False
            if _mark:
                repeat = key in _sites
                _sites.add(key)
            report = _x(src, dst, _nb)
            _e(
                now, T.DMA_EXEC, site=_site, src=src, dst=dst, nbytes=_nb,
                classification=report.classification.label, phase=_ph,
                repeat=repeat, semantic=_sem, forced=forced, seq=seq,
                loop=key[2], duration_us=_d,
            )
        return transfer_raw

    def lower_dma_base(self, dma: A.DMACopy, ctx: Ctx) -> None:
        """Base policy: transfer every time, no protection."""
        duration = self.machine.dma.cost_us(dma.size_bytes)
        src_fn = self.addr_fn(dma.src, ctx)
        dst_fn = self.addr_fn(dma.dst, ctx)
        kf = self.key_fn(ctx)
        seq_get = self.scalar_get("__task_seq")
        idx = self.emit(duration, IO, "dma", None)
        def build(
            _sf=src_fn, _df=dst_fn, _kf=kf, _sg=seq_get,
            _sites=self.rt._executed_sites, _x=self.machine.dma.transfer,
            _semf=self.rt._dma_semantic, _excl=dma.exclude,
            _site=dma.site, _nb=dma.size_bytes, _d=duration,
            _e=self._emit_tr, _n=idx + 1,
        ):
            def eff(now, _sf=_sf, _df=_df, _kf=_kf, _sg=_sg, _sites=_sites,
                    _x=_x, _semf=_semf, _excl=_excl, _site=_site, _nb=_nb,
                    _d=_d, _e=_e, _n=_n):
                src = _sf(now)
                dst = _df(now)
                seq = int(_sg())
                key = (seq, _site, _kf())
                repeat = key in _sites
                _sites.add(key)
                report = _x(src, dst, _nb)
                cls = report.classification
                _e(
                    now, T.DMA_EXEC, site=_site, src=src, dst=dst,
                    nbytes=_nb, classification=cls.label, repeat=repeat,
                    semantic=_semf(cls, _excl), seq=seq, loop=key[2],
                    duration_us=_d,
                )
                return _n
            return eff
        self.specs[idx] = (duration, IO, "dma", build)

    # -- regional privatization ---------------------------------------------

    def _lower_region_boundary(self, rb: A.RegionBoundary) -> None:
        cost = self.cost
        words = sum(self.words_of(var) for var, _copy in rb.copies)
        duration = (
            cost.flag_check_us + cost.flag_set_us + words * cost.priv_word_us
        )
        flag = self._scalar(rb.flag)
        fget = self.scalar_get(rb.flag)
        dma_set = None if rb.dma_flag is None else self._scalar(rb.dma_flag).set
        nbytes = words * 2
        refresh_get = None
        if rb.refresh_on is not None:
            try:
                refresh_get = self.scalar_get(rb.refresh_on)
            except (ProgramError, Unlowerable):
                refresh_get = None
        fwd = []    # first privatization: var -> copy, all of them
        mix = []    # refresh re-entry: refreshed vars forward, rest back
        back = []   # restore: copy -> var
        for var, copy in rb.copies:
            f = self.copy_pair(var, copy)
            b = self.copy_pair(copy, var)
            fwd.append(f)
            mix.append(f if var in rb.refresh_vars else b)
            back.append(b)
        idx = self.emit(duration, OVERHEAD, "fram", None)
        def build(
            _fget=fget, _fset=flag.set, _dset=dma_set, _rg=refresh_get,
            _fwd=fwd, _mix=mix, _back=back, _rid=rb.region_id, _nb=nbytes,
            _d=duration, _e=self._emit_tr, _n=idx + 1,
        ):
            def eff(now, _fget=_fget, _fset=_fset, _dset=_dset, _rg=_rg,
                    _fwd=_fwd, _mix=_mix, _back=_back, _rid=_rid, _nb=_nb,
                    _d=_d, _e=_e, _n=_n):
                refresh = bool(_rg()) if _rg is not None else False
                first = not _fget()
                if first or refresh:
                    for dv, sv in (_fwd if first else _mix):
                        dv[:] = sv
                    _fset(1)
                    if _dset is not None:
                        _dset(1)
                    _e(
                        now, T.PRIVATIZE, region=_rid, refresh=refresh,
                        nbytes=_nb, duration_us=_d,
                    )
                else:
                    for dv, sv in _back:
                        dv[:] = sv
                    _e(
                        now, T.RESTORE, region=_rid, nbytes=_nb,
                        duration_us=_d,
                    )
                return _n
            return eff
        self.specs[idx] = (duration, OVERHEAD, "fram", build)

    def _lower_copy_words(self, cw: A.CopyWords) -> None:
        words = self.words_of(cw.src)
        pair = self.copy_pair(cw.src, cw.dst)
        duration = words * self.cost.priv_word_us
        idx = self.emit(duration, OVERHEAD, "fram", None)
        def build(_p=pair, _n=idx + 1):
            def eff(now, _p=_p, _n=_n):
                dv, sv = _p
                dv[:] = sv
                return _n
            return eff
        self.specs[idx] = (duration, OVERHEAD, "fram", build)

    # ==== commit (shared by the runtime hooks) =============================

    def lower_commit(
        self, task: A.Task, next_task: Optional[str], commit_effects,
    ) -> None:
        """The atomic commit instruction (cursor bump + TASK_COMMIT)."""
        rt = self.rt
        cur_set = self._scalar("__cur_task").set
        done_set = self._scalar("__done").set
        seq_cell = self._scalar("__task_seq")
        seq_get = self.scalar_get("__task_seq")
        next_idx = None if next_task is None else rt._task_index[next_task]
        idx = self.emit(self.cost.commit_base_us, OVERHEAD, "fram", None)
        def build(
            _ce=commit_effects, _cur=cur_set, _done=done_set,
            _sg=seq_get, _ss=seq_cell.set, _i=next_idx,
            _t=task.name, _nt=next_task, _e=self._emit_tr,
        ):
            def eff(now, _ce=_ce, _cur=_cur, _done=_done, _sg=_sg, _ss=_ss,
                    _i=_i, _t=_t, _nt=_nt, _e=_e):
                # ---- atomic commit point ----
                if _ce is not None:
                    _ce()
                if _i is not None:
                    _cur(_i)
                else:
                    _done(1)
                _ss(int(_sg()) + 1)
                _e(now, T.TASK_COMMIT, task=_t, next=_nt)
                if _i is None:
                    _e(now, T.PROGRAM_DONE)
                    return HALT
                return DISPATCH_PC
            return eff
        self.specs[idx] = (self.cost.commit_base_us, OVERHEAD, "fram", build)

    def emit_fell_through(self, task: A.Task) -> None:
        def build(_name=task.name):
            def eff(now, _name=_name):
                raise ProgramError(
                    f"task {_name!r} fell through without TransitionTo/Halt"
                )
            return eff
        self.ctl(build)

    # ==== program assembly =================================================

    def lower_program(self) -> VM:
        rt = self.rt
        tasks = rt.program.tasks
        entry_labels = [self.label() for _ in tasks]
        dispatch_build = rt.vm_build_dispatch(self, entry_labels)
        self.ctl(dispatch_build)  # pc 0 == DISPATCH_PC
        for i, task in enumerate(tasks):
            self.mark(entry_labels[i])
            self._cur_task = task
            rt.vm_lower_task(self, task, i)
        code = self._finalize()
        vmcode = VMCode(
            code, self.max_regs, len(self.S), rt.name, rt.program_name
        )
        return VM(vmcode, rt, self.R, self.S)

    def _finalize(self) -> List[tuple]:
        code: List[tuple] = []
        power_get = self._power.get
        cpu_mw = self._cpu_mw
        for dur, kind, cat, build in self.specs:
            eff = build()
            if dur is None:
                code.append((None, None, None, None, None, eff, None))
            else:
                step = Step(dur, kind, cat)
                draw = power_get(cat, cpu_mw)
                code.append(
                    (
                        dur, step, "time_us." + kind, cat,
                        draw * dur * 1e-3, eff, draw,
                    )
                )
        return code

    # The current task context, for commit lowering from lower_stmt.
    _cur_task: A.Task = None  # type: ignore[assignment]


def lower(runtime) -> Optional[VM]:
    """Compile ``runtime`` into a VM, or ``None`` when not lowerable.

    A ``None`` return means the executor keeps using the generator
    interpreter for this runtime — behaviour-preserving by
    construction.
    """
    try:
        return Lowerer(runtime).lower_program()
    except (Unlowerable, ProgramError, PeripheralError, ReproError, KeyError):
        return None
