"""repro.vm — compile interpreter plans into a register-style stepped VM.

The third execution path (after the reference interpreter and the
memoized fast path): :func:`~repro.vm.lower.lower` compiles one runtime
instance's program — with that runtime's privatization/lock/IO/DMA
policy baked in — into flat bytecode, and :class:`~repro.vm.machine.VM`
steps it with explicit, snapshotable machine state.  Enabled with
``REPRO_SIM_VM=1`` (see :mod:`repro.fastpath`); the two older paths are
kept as oracles and every trace/metric they produce must match
byte-for-byte (DESIGN.md §13).
"""

from repro.vm.machine import DISPATCH_PC, HALT, VM, VMCode
from repro.vm.lower import Lowerer, Unlowerable, lower

__all__ = [
    "DISPATCH_PC",
    "HALT",
    "VM",
    "VMCode",
    "Lowerer",
    "Unlowerable",
    "lower",
]
