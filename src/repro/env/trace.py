"""Recorded power traces: JSONL format, record/replay round-trip.

A power trace file is JSON-Lines:

* line 1 — the header::

      {"format": "repro-power-trace", "version": 1,
       "capacitor": {"capacitance_f": ..., "v_max": ..., "v_on": ...,
                     "v_off": ..., "start_v": ...},
       "max_dark_us": ...,            # null means unbounded
       "source": {...},               # describe() of the recorded source
       "failures": [...],             # failure instants of the recorded run
       "meta": {...}}                 # free-form (app, runtime, seed, ...)

* every further line — one piecewise-constant sample::

      {"t_us": 0.0, "p_mw": 7.25}

Samples are segment *starts*; each power level holds until the next
sample (the last holds forever).  Because every source is piecewise
constant and the environment integrates segments in closed form, a
recorded trace replays to **bit-identical** failure times: the replayed
:class:`~repro.env.sources.TraceSource` reproduces the exact boundary
and power floats the original source produced.
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.env.environment import EnergyEnvironment
from repro.env.sources import TraceSource
from repro.hw.energy import Capacitor

FORMAT = "repro-power-trace"
VERSION = 1


def write_trace(
    path: str,
    env: EnergyEnvironment,
    until_us: float,
    meta: Optional[Dict[str, object]] = None,
) -> int:
    """Export ``env``'s source signal over ``[0, until_us]`` as JSONL.

    Call after a run: the header snapshots the environment's identity
    (capacitor, source, recorded failure instants) so a replay can be
    verified against the original.  Returns the sample count.
    """
    if until_us < 0 or not math.isfinite(until_us):
        raise ReproError(f"trace horizon must be finite and >= 0 ({until_us})")
    cap = env.capacitor
    header = {
        "format": FORMAT,
        "version": VERSION,
        "capacitor": {
            "capacitance_f": cap.capacitance_f,
            "v_max": cap.v_max,
            "v_on": cap.v_on,
            "v_off": cap.v_off,
            "start_v": env._start_v,
        },
        "max_dark_us": (
            None if math.isinf(env.max_dark_us) else env.max_dark_us
        ),
        "source": env.source.describe(),
        "failures": list(env.failure_times),
        "meta": meta or {},
    }
    samples = env.source.segments(until_us)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for t_us, p_mw in samples:
            fh.write(json.dumps({"t_us": t_us, "p_mw": p_mw}) + "\n")
    os.replace(tmp, path)
    return len(samples)


def read_trace(
    path: str,
) -> Tuple[Dict[str, object], List[Tuple[float, float]]]:
    """Parse a trace file into ``(header, samples)``."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = [line for line in fh if line.strip()]
    except OSError as exc:
        raise ReproError(f"cannot read power trace {path!r}: {exc}") from exc
    if not lines:
        raise ReproError(f"power trace {path!r} is empty")
    try:
        header = json.loads(lines[0])
        samples = [
            (float(doc["t_us"]), float(doc["p_mw"]))
            for doc in map(json.loads, lines[1:])
        ]
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed power trace {path!r}: {exc}") from exc
    if header.get("format") != FORMAT:
        raise ReproError(f"{path!r} is not a {FORMAT} file")
    if header.get("version") != VERSION:
        raise ReproError(
            f"power trace {path!r} has version {header.get('version')!r}; "
            f"this build reads version {VERSION}"
        )
    return header, samples


def load_trace(
    path: str, timer=None, spec: Optional[str] = None
) -> EnergyEnvironment:
    """Rebuild the recorded environment: trace source + same capacitor."""
    header, samples = read_trace(path)
    cap_doc = header.get("capacitor") or {}
    try:
        cap = Capacitor(
            capacitance_f=float(cap_doc["capacitance_f"]),
            v_max=float(cap_doc["v_max"]),
            v_on=float(cap_doc["v_on"]),
            v_off=float(cap_doc["v_off"]),
            voltage=float(cap_doc["start_v"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(
            f"power trace {path!r} has a malformed capacitor header: {exc}"
        ) from exc
    max_dark = header.get("max_dark_us")
    return EnergyEnvironment(
        TraceSource(samples),
        capacitor=cap,
        timer=timer,
        max_dark_us=math.inf if max_dark is None else float(max_dark),
        spec=spec if spec is not None else f"trace:{path}",
    )
