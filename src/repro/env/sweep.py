"""Environment sweep: many energy environments as one serve campaign.

A sweep runs every (environment, app, runtime) combination as one
work unit on the serve layer's
:class:`~repro.serve.scheduler.BatchScheduler` — content-addressed
(:func:`sweep_unit_key`, so re-running the same sweep is 100% warm
cache hits), shardable across worker processes, and resumable from a
checkpoint journal keyed by the sweep's campaign identity.

Each unit executes the app once under its environment and summarizes
the emergent failure behaviour (failure count and a digest of the
exact failure instants, dark time, harvested/consumed energy,
died-dark).  With ``verify_replay`` on, the unit also round-trips the
environment through an in-memory recorded trace
(:class:`~repro.env.sources.TraceSource` over
``source.segments(...)``) and re-runs: the replay must reproduce the
original failure instants **bit-identically**, which pins the
record/replay contract on every sweep, not just in the test suite.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.run import run_app
from repro.env.environment import EnergyEnvironment
from repro.env.sources import TraceSource
from repro.env.spec import describe_env, parse_env, random_env_spec
from repro.errors import CampaignInterrupted, NonTermination
from repro.hw.energy import Capacitor
from repro.obs.campaign import CampaignTelemetry
from repro.serve.scheduler import BatchScheduler, WorkUnit
from repro.serve.store import (
    ResultStore,
    campaign_digest,
    program_digest,
    unit_key,
)

#: default app/runtime axes of a sweep
DEFAULT_APPS = ("uni_temp", "fir")
DEFAULT_RUNTIMES = ("easeio",)


@dataclass
class SweepConfig:
    """All knobs of one environment sweep."""

    #: explicit environment specs; empty means *generate* ``count``
    #: random environments from ``seed``
    envs: Tuple[str, ...] = ()
    count: int = 20
    seed: int = 0
    apps: Tuple[str, ...] = DEFAULT_APPS
    runtimes: Tuple[str, ...] = DEFAULT_RUNTIMES
    env_seed: int = 1
    workers: int = 1
    nontermination_limit: int = 2000
    #: re-run each unit from an in-memory recorded trace and require
    #: bit-identical failure instants
    verify_replay: bool = True
    progress: bool = False
    store_dir: Optional[str] = None
    #: physical store layout: "fs" | "sqlite" | None (sniff/env/fs)
    store_backend: Optional[str] = None
    checkpoint: Optional[str] = None


def sweep_envs(cfg: SweepConfig) -> List[str]:
    """The sweep's resolved environment spec list."""
    if cfg.envs:
        return list(cfg.envs)
    return [
        random_env_spec(cfg.seed * 1_000_003 + i) for i in range(cfg.count)
    ]


def sweep_units(cfg: SweepConfig) -> List[Tuple[str, str, str]]:
    """Unit payloads, ``(env_spec, app, runtime)``, in sweep order."""
    return [
        (spec, app, runtime)
        for spec in sweep_envs(cfg)
        for app in cfg.apps
        for runtime in cfg.runtimes
    ]


def sweep_unit_key(cfg: SweepConfig, payload: Tuple[str, str, str]) -> str:
    """Store key of one (environment, app, runtime) unit.

    Keys on the environment's *content descriptor* — two sweeps naming
    the same physical environment share cache entries, and two
    different environments can never collide.  The execution path
    (fastpath / VM) is deliberately absent: path equivalence is pinned
    by the test suite, so verdicts are path-independent by contract.
    """
    spec, app, runtime = payload
    return unit_key(
        "env-unit",
        program=program_digest(app, {}),
        runtime=runtime,
        env=describe_env(spec),
        env_seed=cfg.env_seed,
        nontermination_limit=cfg.nontermination_limit,
        verify_replay=cfg.verify_replay,
    )


def sweep_campaign_digest(cfg: SweepConfig) -> str:
    """Checkpoint identity of one sweep (content-based, like its keys)."""
    return campaign_digest(
        "env-sweep",
        envs=[describe_env(spec) for spec in sweep_envs(cfg)],
        apps=list(cfg.apps),
        runtimes=list(cfg.runtimes),
        env_seed=cfg.env_seed,
        nontermination_limit=cfg.nontermination_limit,
        verify_replay=cfg.verify_replay,
    )


# shared per-process context, populated by the pool initializer
_CTX: Optional[SweepConfig] = None


def _init_worker(cfg: SweepConfig) -> None:
    global _CTX
    _CTX = cfg


def _failures_digest(failure_times: List[float]) -> str:
    """Content digest of the exact failure instants (bit-identity)."""
    payload = json.dumps([float(t).hex() for t in failure_times])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _run_once(
    env: EnergyEnvironment, app: str, runtime: str, cfg: SweepConfig
) -> Tuple[Optional[object], Optional[str]]:
    try:
        result = run_app(
            app,
            runtime,
            failure_model=env,
            seed=cfg.env_seed,
            nontermination_limit=cfg.nontermination_limit,
        )
        return result, None
    except NonTermination as exc:
        return None, f"NonTermination: {exc}"


def _replay_env(env: EnergyEnvironment, horizon_us: float) -> EnergyEnvironment:
    """In-memory record→replay: the trace-source twin of ``env``."""
    cap = env.capacitor
    return EnergyEnvironment(
        TraceSource(env.source.segments(horizon_us)),
        capacitor=Capacitor(
            capacitance_f=cap.capacitance_f,
            v_max=cap.v_max,
            v_on=cap.v_on,
            v_off=cap.v_off,
            voltage=env._start_v,
        ),
        max_dark_us=env.max_dark_us,
    )


def _sweep_unit(payload: Tuple[str, str, str]) -> Dict[str, object]:
    """Run + summarize one unit (executes inside a worker)."""
    assert _CTX is not None, "worker context not initialized"
    cfg = _CTX
    spec, app, runtime = payload
    env = parse_env(spec)
    result, error = _run_once(env, app, runtime, cfg)
    failures = list(env.failure_times)
    summary: Dict[str, object] = {
        "env": spec,
        "app": app,
        "runtime": runtime,
        "completed": bool(result is not None and result.metrics.completed),
        "died_dark": bool(result is not None and result.died_dark),
        "error": error,
        "power_failures": len(failures),
        "failures_digest": _failures_digest(failures),
        "brownouts": env.brownouts,
        "recharges": env.recharges,
        "dark_ms": env.dark_time_us / 1000.0,
        "harvested_uj": env.harvested_uj,
        "consumed_uj": env.consumed_uj,
        "active_ms": (
            result.metrics.active_time_us / 1000.0 if result else 0.0
        ),
        "replay_ok": None,
    }
    if cfg.verify_replay:
        # horizon past everything the run consulted: the trace source
        # holds its last power level forever beyond it, so it must
        # cover even the final dark-period integration of a
        # nonterminating run (which walks well past the last failure)
        twin = _replay_env(env, env.trace_horizon_us())
        replay, replay_error = _run_once(twin, app, runtime, cfg)
        summary["replay_ok"] = bool(
            list(twin.failure_times) == failures
            and replay_error == error
            and (replay is None) == (result is None)
            and (
                result is None
                or replay.metrics.completed == result.metrics.completed
            )
        )
    return summary


def _unit_counters(summary: Dict[str, object]) -> Dict[str, int]:
    counts = {
        "sweep.units": 1,
        "sweep.failures": int(summary["power_failures"]),
    }
    if summary["completed"]:
        counts["sweep.completed"] = 1
    if summary["died_dark"]:
        counts["sweep.died_dark"] = 1
    if summary["error"]:
        counts["sweep.nonterminated"] = 1
    if summary["replay_ok"] is False:
        counts["sweep.replay_mismatches"] = 1
    return counts


@dataclass
class SweepReport:
    """Folded results of one environment sweep."""

    config: Dict[str, object]
    rows: List[Dict[str, object]]
    elapsed_s: float = 0.0
    serve: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not any(r["replay_ok"] is False for r in self.rows)

    def totals(self) -> Dict[str, int]:
        rows = self.rows
        return {
            "units": len(rows),
            "envs": len({r["env"] for r in rows}),
            "completed": sum(1 for r in rows if r["completed"]),
            "died_dark": sum(1 for r in rows if r["died_dark"]),
            "nonterminated": sum(1 for r in rows if r["error"]),
            "power_failures": sum(r["power_failures"] for r in rows),
            "replay_verified": sum(1 for r in rows if r["replay_ok"]),
            "replay_mismatches": sum(
                1 for r in rows if r["replay_ok"] is False
            ),
        }

    def to_json(self) -> Dict[str, object]:
        return {
            "kind": "env-sweep",
            "config": dict(self.config),
            "totals": self.totals(),
            "rows": [dict(r) for r in self.rows],
            "serve": dict(self.serve),
            "elapsed_s": self.elapsed_s,
        }

    def render_text(self) -> str:
        t = self.totals()
        lines = [
            f"env sweep: {t['envs']} environments x "
            f"{t['units'] // max(1, t['envs'])} configs = {t['units']} units",
            f"  completed    : {t['completed']}",
            f"  died dark    : {t['died_dark']}",
            f"  nonterminated: {t['nonterminated']}",
            f"  emergent power failures: {t['power_failures']}",
        ]
        if any(r["replay_ok"] is not None for r in self.rows):
            lines.append(
                f"  trace replay : {t['replay_verified']} bit-identical, "
                f"{t['replay_mismatches']} mismatched"
            )
        if self.serve:
            served = ", ".join(
                f"{k}={v}" for k, v in sorted(self.serve.items())
            )
            lines.append(f"  serve        : {served}")
        lines.append(f"  elapsed      : {self.elapsed_s:.2f}s")
        if not self.ok:
            lines.append("  REPLAY MISMATCH — record/replay contract broken")
        return "\n".join(lines)


def describe_config(cfg: SweepConfig) -> Dict[str, object]:
    return {
        "kind": "env-sweep",
        "envs": sweep_envs(cfg),
        "apps": list(cfg.apps),
        "runtimes": list(cfg.runtimes),
        "env_seed": cfg.env_seed,
        "seed": cfg.seed,
        "workers": cfg.workers,
        "nontermination_limit": cfg.nontermination_limit,
        "verify_replay": cfg.verify_replay,
    }


def run_sweep(
    cfg: SweepConfig,
    cancel: Optional[threading.Event] = None,
    telemetry: Optional[CampaignTelemetry] = None,
    series=None,
    events=None,
) -> SweepReport:
    """Execute one full environment sweep and fold up the report.

    Interruption (SIGINT / ``cancel``) raises
    :class:`~repro.errors.CampaignInterrupted` after the checkpoint is
    flushed; re-running the same config with the same ``checkpoint``
    resumes where it died, and with ``store_dir`` a finished sweep
    re-runs entirely from warm cache hits.
    """
    payloads = sweep_units(cfg)
    start = time.monotonic()
    if telemetry is None:
        telemetry = CampaignTelemetry(
            "env sweep", len(payloads), every=10, progress=cfg.progress,
        )
    _init_worker(cfg)  # parent context (inline runs, counters)
    store = (
        ResultStore(cfg.store_dir, backend=cfg.store_backend)
        if cfg.store_dir else None
    )
    scheduler = BatchScheduler(
        workers=cfg.workers,
        store=store,
        checkpoint_path=cfg.checkpoint,
        campaign=sweep_campaign_digest(cfg),
        telemetry=telemetry,
        cancel=cancel,
        series=series,
        events=events,
    )
    units = [
        WorkUnit(
            index=i,
            payload=payload,
            key=sweep_unit_key(cfg, payload) if store is not None else "",
        )
        for i, payload in enumerate(payloads)
    ]
    try:
        rows = scheduler.run(
            units,
            task=_sweep_unit,
            initializer=_init_worker,
            initargs=(cfg,),
            counters=_unit_counters,
        )
    except CampaignInterrupted as exc:
        done = [exc.results[i] for i in sorted(exc.results)]
        exc.report = SweepReport(
            config=describe_config(cfg),
            rows=done,
            elapsed_s=time.monotonic() - start,
            serve=dict(scheduler.last_run_stats),
        )
        raise
    return SweepReport(
        config=describe_config(cfg),
        rows=rows,
        elapsed_s=time.monotonic() - start,
        serve=dict(scheduler.last_run_stats),
    )
