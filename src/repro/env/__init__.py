"""repro.env — energy environments that drive power-failure timing.

Closes the loop from harvest source → capacitor charge/discharge →
emergent power failure: :class:`EnergyEnvironment` is a
:class:`~repro.kernel.power.FailureModel` whose failure instants come
from the workload's own energy draw, with deterministic stochastic
sources, recorded-trace replay, and a serve-backed environment sweep.
"""

from repro.env.environment import (
    DEFAULT_CAPACITANCE_F,
    DEFAULT_MAX_DARK_US,
    EnergyEnvironment,
)
from repro.env.sources import (
    BurstySource,
    ConstantSource,
    EnergySource,
    MarkovSource,
    RFSource,
    SolarSource,
    TraceSource,
)
from repro.env.spec import describe_env, parse_env, random_env_spec
from repro.env.trace import load_trace, read_trace, write_trace

__all__ = [
    "DEFAULT_CAPACITANCE_F",
    "DEFAULT_MAX_DARK_US",
    "EnergyEnvironment",
    "EnergySource",
    "ConstantSource",
    "SolarSource",
    "BurstySource",
    "MarkovSource",
    "RFSource",
    "TraceSource",
    "parse_env",
    "describe_env",
    "random_env_spec",
    "write_trace",
    "read_trace",
    "load_trace",
]
