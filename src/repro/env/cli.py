"""``python -m repro env`` — record, replay and sweep energy environments.

Subcommands:

``record``
    run one app/runtime under an ``--env`` spec and export the power
    signal the run actually saw as a JSONL trace file, with the
    capacitor identity and the emergent failure instants in the header;
``replay``
    re-run from a recorded trace file and verify the emergent failure
    instants are **bit-identical** to the recorded ones (exit 1 on any
    divergence) — the determinism contract, checkable from the shell;
``sweep``
    run a grid of environments x apps x runtimes as one serve-backed
    campaign: content-addressed (re-runs are warm cache hits),
    sharded across workers, checkpoint-resumable after SIGINT.

Examples::

    python -m repro env record uni_temp --env markov:seed=7,cap_uf=2.2 \\
        --out /tmp/markov7.jsonl
    python -m repro env replay /tmp/markov7.jsonl
    python -m repro env sweep --count 100 --seed 1 --apps uni_temp,fir \\
        --store .repro-store --checkpoint sweep.ckpt --workers 4
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.apps import APPS
from repro.core.run import run_app
from repro.env.spec import parse_env
from repro.env.trace import load_trace, read_trace, write_trace
from repro.errors import CampaignInterrupted, NonTermination, ReproError

_RUNTIMES = ("alpaca", "ink", "samoyed", "easeio")


def _run_under(env, app: str, runtime: str, env_seed: int, limit: int):
    """One run under ``env``; NonTermination becomes a reported error."""
    try:
        result = run_app(
            app, runtime, failure_model=env, seed=env_seed,
            nontermination_limit=limit,
        )
        return result, None
    except NonTermination as exc:
        return None, f"NonTermination: {exc}"


def _horizon(env, result) -> float:
    """A trace horizon safely past everything the run consulted."""
    return env.trace_horizon_us()


def _cmd_record(args) -> int:
    env = parse_env(args.env)
    result, error = _run_under(
        env, args.app, args.runtime, args.env_seed, args.limit
    )
    meta = {
        "app": args.app,
        "runtime": args.runtime,
        "env": args.env,
        "env_seed": args.env_seed,
        "nontermination_limit": args.limit,
        "completed": bool(result is not None and result.metrics.completed),
        "died_dark": bool(result is not None and result.died_dark),
        "error": error,
    }
    n = write_trace(args.out, env, _horizon(env, result), meta=meta)
    print(
        f"recorded {args.out}: {n} samples, "
        f"{len(env.failure_times)} emergent failures, "
        f"completed={meta['completed']} died_dark={meta['died_dark']}"
    )
    return 0


def _cmd_replay(args) -> int:
    header, _ = read_trace(args.trace)
    meta = header.get("meta") or {}
    app = args.app or meta.get("app")
    runtime = args.runtime or meta.get("runtime", "easeio")
    env_seed = args.env_seed if args.env_seed is not None else int(
        meta.get("env_seed", 1)
    )
    limit = args.limit if args.limit is not None else int(
        meta.get("nontermination_limit", 2000)
    )
    if not app:
        raise ReproError(
            f"trace {args.trace!r} records no app in its meta; pass --app"
        )
    env = load_trace(args.trace)
    result, error = _run_under(env, app, runtime, env_seed, limit)
    recorded = [float(t) for t in header.get("failures", [])]
    replayed = list(env.failure_times)
    ok = replayed == recorded
    print(
        f"replayed {app}/{runtime} from {args.trace}: "
        f"{len(replayed)} failures, "
        + ("bit-identical to recording" if ok else "DIVERGED from recording")
    )
    if error:
        print(f"  run error: {error}")
    if not ok:
        for i, (a, b) in enumerate(zip(recorded, replayed)):
            if a != b:
                print(f"  first divergence at failure {i}: "
                      f"recorded {a!r} vs replayed {b!r}")
                break
        else:
            print(f"  failure counts differ: recorded {len(recorded)}, "
                  f"replayed {len(replayed)}")
    return 0 if ok else 1


def _csv(value: str):
    return tuple(v.strip() for v in value.split(",") if v.strip())


def _cmd_sweep(args) -> int:
    from repro.env.sweep import SweepConfig, run_sweep

    cfg = SweepConfig(
        envs=_csv(args.envs) if args.envs else (),
        count=args.count,
        seed=args.seed,
        apps=_csv(args.apps),
        runtimes=_csv(args.runtimes),
        env_seed=args.env_seed,
        workers=max(1, args.workers),
        verify_replay=not args.no_verify,
        progress=True,
        store_dir=args.store,
        store_backend=args.store_backend,
        checkpoint=args.checkpoint,
    )
    for app in cfg.apps:
        if app not in APPS:
            raise ReproError(f"unknown app {app!r}; choose from {sorted(APPS)}")
    for runtime in cfg.runtimes:
        if runtime not in _RUNTIMES:
            raise ReproError(
                f"unknown runtime {runtime!r}; choose from {sorted(_RUNTIMES)}"
            )
    try:
        report = run_sweep(cfg)
    except CampaignInterrupted as exc:
        if exc.report is not None:
            print(exc.report.render_text())
        print(
            f"env sweep: interrupted after {exc.done}/{exc.total} units"
            + (f"; resume with --checkpoint {args.checkpoint}"
               if args.checkpoint else ""),
            file=sys.stderr,
        )
        return 130
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro env",
        description="energy environments: record, replay, sweep",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_rec = sub.add_parser("record", help="run once, export the power trace")
    p_rec.add_argument("app", choices=sorted(APPS))
    p_rec.add_argument("--runtime", default="easeio", choices=_RUNTIMES)
    p_rec.add_argument("--env", required=True,
                       help="environment spec (kind:key=val,...)")
    p_rec.add_argument("--out", required=True, metavar="FILE",
                       help="trace output path (JSONL)")
    p_rec.add_argument("--env-seed", type=int, default=1)
    p_rec.add_argument("--limit", type=int, default=2000,
                       help="nontermination limit (default 2000)")

    p_rep = sub.add_parser(
        "replay", help="re-run from a trace, verify bit-identical failures"
    )
    p_rep.add_argument("trace", help="recorded trace file")
    p_rep.add_argument("--app", default=None, choices=sorted(APPS),
                       help="override the app recorded in the trace meta")
    p_rep.add_argument("--runtime", default=None, choices=_RUNTIMES,
                       help="override the runtime recorded in the trace meta")
    p_rep.add_argument("--env-seed", type=int, default=None)
    p_rep.add_argument("--limit", type=int, default=None)

    p_sw = sub.add_parser(
        "sweep", help="environment grid as a serve-backed campaign"
    )
    p_sw.add_argument("--envs", default=None,
                      help="comma-separated explicit specs "
                           "(default: generate --count random ones)")
    p_sw.add_argument("--count", type=int, default=20,
                      help="generated environments (default 20)")
    p_sw.add_argument("--seed", type=int, default=0,
                      help="environment-generation seed")
    p_sw.add_argument("--apps", default=",".join(("uni_temp", "fir")),
                      help="comma-separated apps (default uni_temp,fir)")
    p_sw.add_argument("--runtimes", default="easeio",
                      help="comma-separated runtimes (default easeio)")
    p_sw.add_argument("--env-seed", type=int, default=1)
    p_sw.add_argument("--workers", type=int, default=1)
    p_sw.add_argument("--no-verify", action="store_true",
                      help="skip the per-unit record->replay verification")
    p_sw.add_argument("--store", default=None, metavar="DIR",
                      help="content-addressed result store")
    p_sw.add_argument("--store-backend", default=None,
                      choices=["fs", "sqlite"],
                      help="store layout (default: sniff/env/fs)")
    p_sw.add_argument("--checkpoint", default=None, metavar="FILE",
                      help="journal progress; interrupted sweeps resume")
    p_sw.add_argument("--json", action="store_true")

    args = parser.parse_args(argv)
    if args.command == "record":
        return _cmd_record(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
