"""The energy environment: harvest source → capacitor → power failure.

:class:`EnergyEnvironment` closes the loop the scripted/uniform timer
models leave open: *when* power fails becomes a function of the
workload's own energy draw.  It is a
:class:`~repro.kernel.power.FailureModel` with ``energy_coupled =
True``; the executor (both the step-generator path and the compiled-VM
path in :mod:`repro.kernel.executor`) drives it through three hooks:

``fail_time(start, duration, draw)``
    a *pure* query: given a step window at constant ``draw`` mW, the
    absolute instant the capacitor would cross the off-threshold, or
    ``inf``.  Computed segment-wise against the source signal in the
    same closed-form arithmetic the harvest mode uses
    (``t + usable / (net · 1e-3)``), so failure schedules are exact and
    identical on every execution path.

``commit_window(start, duration, draw)``
    the matching state update once the executor decided how much of
    the window really ran: charge by the source, discharge by the
    draw, per signal segment.

``on_failure(now)``
    the reboot-side hook: if the capacitor browned out, integrate the
    dark period segment-wise until the voltage re-arms at the *on*
    threshold (hysteresis); a dark period exceeding ``max_dark_us``
    means the device died dark (``inf``).  Timer-induced soft resets
    with charge remaining reboot immediately (zero dark) — matching
    the paper's emulated-energy regime.

A composed ``timer`` failure model (scripted or uniform resets) can
ride along; the checker uses this to inject its boundary probes *into*
an environment.  Determinism: the source signal is a pure function of
its seed and absolute time, ``reset()`` rewinds capacitor, timer and
counters, so a (workload, environment) pair fully determines the
failure schedule.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.hw.energy import Capacitor
from repro.kernel.power import FailureModel
from repro.env.sources import EnergySource

#: default buffer: small enough that ms-scale workloads actually brown
#: out when the source ducks under the draw (cf. Figure 13's 12 µF)
DEFAULT_CAPACITANCE_F = 4.7e-6

#: give up on recharge after this much continuous dark time (died dark)
DEFAULT_MAX_DARK_US = 10_000_000.0


class EnergyEnvironment(FailureModel):
    """Capacitor-coupled failure timing driven by an energy source."""

    #: executor dispatch flag: this failure model meters energy itself
    energy_coupled = True

    def __init__(
        self,
        source: EnergySource,
        capacitor: Optional[Capacitor] = None,
        timer: Optional[FailureModel] = None,
        max_dark_us: float = DEFAULT_MAX_DARK_US,
        spec: Optional[str] = None,
    ) -> None:
        if max_dark_us <= 0:
            raise ReproError("max_dark_us must be positive")
        self.source = source
        self.capacitor = (
            capacitor if capacitor is not None
            else Capacitor(capacitance_f=DEFAULT_CAPACITANCE_F)
        )
        self.timer = timer
        self.max_dark_us = float(max_dark_us)
        #: the spec string this environment was parsed from, if any
        self.spec = spec
        self._start_v = self.capacitor.voltage
        self._zero_counters()

    def _zero_counters(self) -> None:
        self.failures = 0            # on_failure invocations (any cause)
        self.brownouts = 0           # energy-driven failures
        self.recharges = 0           # dark periods with positive length
        self.dark_time_us = 0.0
        self.harvested_uj = 0.0
        self.consumed_uj = 0.0
        self.died_dark = False
        #: absolute failure instants, in order (record/replay identity)
        self.failure_times: List[float] = []
        #: latest absolute source instant any hook consulted — the
        #: minimum horizon a recorded trace needs to replay exactly
        self.probed_us = 0.0

    # -- FailureModel interface ------------------------------------------

    def schedule_next(self, now_us: float) -> float:
        """Timer-induced resets only; energy failures come from hooks."""
        if self.timer is not None:
            return self.timer.schedule_next(now_us)
        return math.inf

    def reset(self) -> None:
        self.capacitor.voltage = self._start_v
        self.source.reset()
        if self.timer is not None:
            self.timer.reset()
        self._zero_counters()

    # -- executor hooks ---------------------------------------------------

    def fail_time(
        self, start_us: float, duration_us: float, draw_mw: float
    ) -> float:
        """Absolute brown-out instant inside the window, or ``inf``.

        Pure: simulates the charge balance on local copies; call
        :meth:`commit_window` to apply the survived portion.
        """
        cap = self.capacitor
        floor = cap._energy_at(cap.v_off)
        ceiling = cap._energy_at(cap.v_max)
        stored = cap.stored_uj
        source = self.source
        end = start_us + duration_us
        if end > self.probed_us:
            self.probed_us = end
        t = start_us
        while True:
            seg_end = source.next_change_us(t)
            if seg_end > end:
                seg_end = end
            net_mw = draw_mw - source.power_mw(t)
            if net_mw > 0:
                exhaust_at = t + (stored - floor) / (net_mw * 1e-3)
                if exhaust_at < seg_end:
                    return exhaust_at
            stored -= net_mw * (seg_end - t) * 1e-3
            if stored > ceiling:
                stored = ceiling
            if seg_end >= end:
                return math.inf
            t = seg_end

    def commit_window(
        self, start_us: float, duration_us: float, draw_mw: float
    ) -> None:
        """Apply a (possibly truncated) window to the capacitor."""
        cap = self.capacitor
        source = self.source
        end = start_us + duration_us
        if end > self.probed_us:
            self.probed_us = end
        t = start_us
        while True:
            seg_end = source.next_change_us(t)
            if seg_end > end:
                seg_end = end
            dt = seg_end - t
            if dt > 0:
                before = cap.stored_uj
                cap.charge(source.power_mw(t), dt)
                self.harvested_uj += cap.stored_uj - before
                before = cap.stored_uj
                cap.discharge(draw_mw * dt * 1e-3)
                self.consumed_uj += before - cap.stored_uj
            if seg_end >= end:
                return
            t = seg_end

    def brownout(self) -> None:
        """Pin the capacitor at the off-threshold after an energy failure.

        ``fail_time`` and ``commit_window`` round independently; forcing
        the brown-out state here keeps the reboot path's hysteresis
        decision exact instead of epsilon-dependent.
        """
        self.capacitor.voltage = self.capacitor.v_off
        self.brownouts += 1

    def on_failure(self, now_us: float) -> float:
        """Dark time until restart; ``inf`` when the device died dark.

        A brown-out (voltage at/below the off-threshold) keeps the
        device dark until the source recharges the capacitor to the
        *on* threshold; a timer soft reset with charge remaining
        reboots immediately.
        """
        self.failures += 1
        self.failure_times.append(now_us)
        cap = self.capacitor
        if cap.is_on:
            return 0.0
        source = self.source
        target = cap._energy_at(cap.v_on)
        stored = cap.stored_uj
        t = now_us
        dark = 0.0
        while stored < target:
            seg_end = source.next_change_us(t)
            power = source.power_mw(t)
            if power > 0:
                need_us = (target - stored) / (power * 1e-3)
                if t + need_us <= seg_end:
                    dark += need_us
                    stored = target
                    t = t + need_us
                    break
            if math.isinf(seg_end) or dark > self.max_dark_us:
                self.died_dark = True
                if t > self.probed_us:
                    self.probed_us = t
                return math.inf
            stored += power * (seg_end - t) * 1e-3
            dark += seg_end - t
            t = seg_end
        if t > self.probed_us:
            self.probed_us = t
        if dark > self.max_dark_us:
            self.died_dark = True
            return math.inf
        cap.voltage = cap.v_on
        if dark > 0:
            self.recharges += 1
        self.dark_time_us += dark
        return dark

    def trace_horizon_us(self, slack_us: float = 10_000.0) -> float:
        """A horizon safely past every source instant this run consulted.

        Recording a trace out to this point guarantees a replay sees
        exactly the signal the live run saw — including dark-period
        integrations past the last *recorded* failure, which a
        failure-time-based horizon under-covers on nonterminating runs
        (their final recharge walks tens of milliseconds past the last
        failure the run had time to log).
        """
        return self.probed_us + slack_us

    # -- reporting ---------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        cap = self.capacitor
        return {
            "source": self.source.describe(),
            "capacitance_f": cap.capacitance_f,
            "v_max": cap.v_max,
            "v_on": cap.v_on,
            "v_off": cap.v_off,
            "start_v": self._start_v,
            "max_dark_us": self.max_dark_us,
        }

    def counters(self) -> Dict[str, float]:
        """The run's ``env.*`` observability counters."""
        return {
            "env.runs": 1,
            "env.failures": self.failures,
            "env.brownouts": self.brownouts,
            "env.recharges": self.recharges,
            "env.dark_us": self.dark_time_us,
            "env.harvested_uj": self.harvested_uj,
            "env.consumed_uj": self.consumed_uj,
            "env.died_dark": 1 if self.died_dark else 0,
        }
