"""Energy sources for environment-driven power failures.

Every source here is a *piecewise-constant* power signal over absolute
simulated time: ``power_mw(t)`` is the harvested power inside the
segment containing ``t`` and ``next_change_us(t)`` is the absolute time
at which that segment ends.  The environment integrates the workload's
draw against the signal segment by segment, so failure instants and
dark periods come out in closed form — no numeric time-stepping, and
bit-identical results on every execution path.

Determinism contract
--------------------
Stochastic sources materialize their segments *lazily but
sequentially* from a dedicated seeded RNG: segment ``k`` is always the
``k``-th draw, whatever query pattern produced it.  Two consequences:

* a seed fully determines the signal — replaying a run replays its
  failure times exactly;
* ``reset()`` is a no-op for the signal itself (the signal is a pure
  function of absolute time), so one source instance can serve many
  runs of a campaign without re-seeding drift.

Contrast with :class:`repro.hw.harvester.RFHarvester`, whose fading
segments start at whatever time the *query* arrived — history-dependent
and therefore not replayable.  :class:`RFSource` reuses the same Friis
physics on a fixed absolute-time fading grid instead.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ReproError


class EnergySource:
    """Interface: a piecewise-constant harvested-power signal."""

    def power_mw(self, time_us: float) -> float:
        """Harvested power (mW) inside the segment containing ``time_us``."""
        raise NotImplementedError

    def next_change_us(self, time_us: float) -> float:
        """Absolute end of the segment containing ``time_us`` (may be inf)."""
        raise NotImplementedError

    def reset(self) -> None:
        """Start-of-run hook.  Signals are pure in absolute time: no-op."""

    def describe(self) -> Dict[str, object]:
        """JSON-safe identity of this source (store keys, reports)."""
        raise NotImplementedError

    def segments(self, until_us: float) -> List[Tuple[float, float]]:
        """Materialized ``(start_us, power_mw)`` list covering [0, until]."""
        raise NotImplementedError


class ConstantSource(EnergySource):
    """A fixed supply level — the control environment (never changes)."""

    def __init__(self, level_mw: float = 1000.0) -> None:
        if level_mw < 0:
            raise ReproError("supply power must be >= 0")
        self.level_mw = float(level_mw)

    def power_mw(self, time_us: float) -> float:
        return self.level_mw

    def next_change_us(self, time_us: float) -> float:
        return math.inf

    def describe(self) -> Dict[str, object]:
        return {"kind": "constant", "level_mw": self.level_mw}

    def segments(self, until_us: float) -> List[Tuple[float, float]]:
        return [(0.0, self.level_mw)]


class _SegmentedSource(EnergySource):
    """Base: lazily materialized seeded segment sequence.

    Subclasses implement ``_draw_segment(k) -> (duration_us, power_mw)``
    using ``self._rng`` (and/or the index ``k``); draws happen in
    strictly increasing ``k`` order, which is what makes the signal a
    pure function of ``(seed, absolute time)``.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)
        self._bounds: List[float] = [0.0]   # segment k covers [b[k], b[k+1])
        self._powers: List[float] = []

    def _draw_segment(self, k: int) -> Tuple[float, float]:
        raise NotImplementedError

    def _segment_index(self, time_us: float) -> int:
        if time_us < 0:
            raise ReproError(f"source queried at negative time {time_us}")
        bounds = self._bounds
        while bounds[-1] <= time_us:
            duration, power = self._draw_segment(len(self._powers))
            if not duration > 0:
                raise ReproError("source segments must have positive duration")
            self._powers.append(max(0.0, float(power)))
            bounds.append(bounds[-1] + float(duration))
        return bisect_right(bounds, time_us) - 1

    def power_mw(self, time_us: float) -> float:
        return self._powers[self._segment_index(time_us)]

    def next_change_us(self, time_us: float) -> float:
        return self._bounds[self._segment_index(time_us) + 1]

    def segments(self, until_us: float) -> List[Tuple[float, float]]:
        self._segment_index(max(0.0, until_us))
        return [
            (self._bounds[i], self._powers[i])
            for i in range(len(self._powers))
            if self._bounds[i] <= until_us
        ]


class SolarSource(_SegmentedSource):
    """A scaled diurnal cycle: sinusoidal daylight, dark nights.

    Real days are ~10^10 µs — far beyond ms-scale runs — so the cycle
    is compressed: ``day_ms`` spans one full day.  Power follows the
    positive half of a sinusoid (clamped to zero at "night"), quantized
    into ``steps`` constant buckets per day with mild per-bucket
    log-normal cloud jitter.
    """

    def __init__(
        self,
        peak_mw: float = 8.0,
        day_ms: float = 200.0,
        steps: int = 32,
        jitter_db: float = 1.0,
        seed: int = 0,
    ) -> None:
        if peak_mw < 0 or day_ms <= 0 or steps < 2:
            raise ReproError("solar source needs peak>=0, day>0, steps>=2")
        super().__init__(seed)
        self.peak_mw = float(peak_mw)
        self.day_ms = float(day_ms)
        self.steps = int(steps)
        self.jitter_db = float(jitter_db)

    def _draw_segment(self, k: int) -> Tuple[float, float]:
        quantum_us = self.day_ms * 1000.0 / self.steps
        phase = (k % self.steps) / self.steps
        level = self.peak_mw * max(0.0, math.sin(2.0 * math.pi * phase))
        if self.jitter_db > 0:
            level *= 10.0 ** (
                float(self._rng.normal(0.0, self.jitter_db)) / 10.0
            )
        return quantum_us, level

    def describe(self) -> Dict[str, object]:
        return {
            "kind": "solar",
            "peak_mw": self.peak_mw,
            "day_ms": self.day_ms,
            "steps": self.steps,
            "jitter_db": self.jitter_db,
            "seed": self.seed,
        }


class BurstySource(_SegmentedSource):
    """Kinetic-style harvesting: short energetic bursts, quiet gaps.

    Models piezo/vibration harvesters (footsteps, machinery): power
    arrives in exponentially-distributed bursts of log-normally jittered
    height separated by exponential quiet gaps at ``base_mw``.
    """

    def __init__(
        self,
        peak_mw: float = 12.0,
        base_mw: float = 0.0,
        mean_burst_ms: float = 4.0,
        mean_gap_ms: float = 12.0,
        jitter_db: float = 2.0,
        seed: int = 0,
    ) -> None:
        if peak_mw < 0 or base_mw < 0:
            raise ReproError("bursty source powers must be >= 0")
        if mean_burst_ms <= 0 or mean_gap_ms <= 0:
            raise ReproError("bursty source durations must be > 0")
        super().__init__(seed)
        self.peak_mw = float(peak_mw)
        self.base_mw = float(base_mw)
        self.mean_burst_ms = float(mean_burst_ms)
        self.mean_gap_ms = float(mean_gap_ms)
        self.jitter_db = float(jitter_db)

    def _draw_segment(self, k: int) -> Tuple[float, float]:
        rng = self._rng
        if k % 2 == 0:  # burst
            duration_ms = float(rng.exponential(self.mean_burst_ms))
            level = self.peak_mw * 10.0 ** (
                float(rng.normal(0.0, self.jitter_db)) / 10.0
            )
        else:  # gap
            duration_ms = float(rng.exponential(self.mean_gap_ms))
            level = self.base_mw
        return max(1.0, duration_ms * 1000.0), level

    def describe(self) -> Dict[str, object]:
        return {
            "kind": "bursty",
            "peak_mw": self.peak_mw,
            "base_mw": self.base_mw,
            "mean_burst_ms": self.mean_burst_ms,
            "mean_gap_ms": self.mean_gap_ms,
            "jitter_db": self.jitter_db,
            "seed": self.seed,
        }


class MarkovSource(_SegmentedSource):
    """Seeded two-state on/off outage process with a heavy off-tail.

    On-durations are exponential around ``mean_on_ms``; off-durations
    are Pareto-tailed around ``mean_off_ms`` (shape ``tail``; smaller
    is heavier).  The heavy tail is the point: occasional outages far
    longer than any ``Timely(Δt)`` freshness window are exactly the
    scenario where stale-data bugs manifest (Surbatovich et al.).
    """

    def __init__(
        self,
        on_mw: float = 8.0,
        mean_on_ms: float = 10.0,
        mean_off_ms: float = 40.0,
        tail: float = 1.5,
        seed: int = 0,
    ) -> None:
        if on_mw < 0:
            raise ReproError("markov on-power must be >= 0")
        if mean_on_ms <= 0 or mean_off_ms <= 0:
            raise ReproError("markov durations must be > 0")
        if tail <= 1.0:
            raise ReproError("markov tail shape must be > 1 (finite mean)")
        super().__init__(seed)
        self.on_mw = float(on_mw)
        self.mean_on_ms = float(mean_on_ms)
        self.mean_off_ms = float(mean_off_ms)
        self.tail = float(tail)

    def _draw_segment(self, k: int) -> Tuple[float, float]:
        rng = self._rng
        if k % 2 == 0:  # on
            duration_ms = float(rng.exponential(self.mean_on_ms))
            level = self.on_mw
        else:  # off — Pareto(tail) scaled to mean ``mean_off_ms``
            a = self.tail
            duration_ms = (
                self.mean_off_ms * (a - 1.0) / a * (float(rng.pareto(a)) + 1.0)
            )
            level = 0.0
        return max(1.0, duration_ms * 1000.0), level

    def describe(self) -> Dict[str, object]:
        return {
            "kind": "markov",
            "on_mw": self.on_mw,
            "mean_on_ms": self.mean_on_ms,
            "mean_off_ms": self.mean_off_ms,
            "tail": self.tail,
            "seed": self.seed,
        }


class RFSource(_SegmentedSource):
    """The Figure-13 RF link as a replayable source.

    Same physics as :class:`repro.bench.runner.KneeRFHarvester` — Friis
    free-space path loss into a rectifier with an efficiency knee — but
    log-normal multipath fading is drawn on a *fixed* absolute-time
    grid (segment ``k`` covers ``[k·period, (k+1)·period)``), so the
    signal is a pure function of ``(distance, seed)`` and records
    replay exactly.
    """

    def __init__(
        self,
        distance_inch: float,
        tx_power_w: float = 3.0,
        tx_gain: float = 4.0,
        rx_gain: float = 2.0,
        frequency_mhz: float = 915.0,
        efficiency: float = 0.55,
        knee_mw: float = 20.0,
        fading_std_db: float = 2.0,
        fading_period_us: float = 15_000.0,
        seed: int = 0,
    ) -> None:
        if distance_inch <= 0:
            raise ReproError("harvester distance must be positive")
        if not 0 < efficiency <= 1:
            raise ReproError("rectifier efficiency must be in (0, 1]")
        if fading_period_us <= 0:
            raise ReproError("fading period must be positive")
        super().__init__(seed)
        self.distance_inch = float(distance_inch)
        self.tx_power_w = float(tx_power_w)
        self.tx_gain = float(tx_gain)
        self.rx_gain = float(rx_gain)
        self.frequency_mhz = float(frequency_mhz)
        self.efficiency = float(efficiency)
        self.knee_mw = float(knee_mw)
        self.fading_std_db = float(fading_std_db)
        self.fading_period_us = float(fading_period_us)

    def mean_power_mw(self) -> float:
        """Friis link budget through the knee rectifier, in milliwatts."""
        distance_m = self.distance_inch * 0.0254
        wavelength_m = 299_792_458.0 / (self.frequency_mhz * 1e6)
        path = (wavelength_m / (4.0 * math.pi * distance_m)) ** 2
        received_mw = self.tx_power_w * self.tx_gain * self.rx_gain * path * 1e3
        return (
            received_mw * self.efficiency * received_mw
            / (received_mw + self.knee_mw)
        )

    def _draw_segment(self, k: int) -> Tuple[float, float]:
        level = self.mean_power_mw()
        if self.fading_std_db > 0:
            fade_db = float(self._rng.normal(0.0, self.fading_std_db))
            level *= 10.0 ** (fade_db / 10.0)
        return self.fading_period_us, level

    def describe(self) -> Dict[str, object]:
        return {
            "kind": "rf",
            "distance_inch": self.distance_inch,
            "tx_power_w": self.tx_power_w,
            "tx_gain": self.tx_gain,
            "rx_gain": self.rx_gain,
            "frequency_mhz": self.frequency_mhz,
            "efficiency": self.efficiency,
            "knee_mw": self.knee_mw,
            "fading_std_db": self.fading_std_db,
            "fading_period_us": self.fading_period_us,
            "seed": self.seed,
        }


class TraceSource(EnergySource):
    """A recorded power trace: explicit ``(start_us, power_mw)`` samples.

    The last sample's power holds forever — a finite recording must
    still answer queries past its end (e.g. a replayed workload that
    runs a bit longer than the recorded one).
    """

    def __init__(self, samples: Sequence[Tuple[float, float]]) -> None:
        if not samples:
            raise ReproError("power trace must contain at least one sample")
        starts = [float(t) for t, _ in samples]
        if starts[0] != 0.0:
            raise ReproError("power trace must start at t=0")
        if any(b <= a for a, b in zip(starts, starts[1:])):
            raise ReproError("power trace times must strictly increase")
        self._starts = starts
        self._powers = [max(0.0, float(p)) for _, p in samples]

    def power_mw(self, time_us: float) -> float:
        return self._powers[bisect_right(self._starts, time_us) - 1]

    def next_change_us(self, time_us: float) -> float:
        i = bisect_right(self._starts, time_us)
        return self._starts[i] if i < len(self._starts) else math.inf

    def describe(self) -> Dict[str, object]:
        return {
            "kind": "trace",
            "samples": len(self._starts),
            "duration_us": self._starts[-1],
        }

    def segments(self, until_us: float) -> List[Tuple[float, float]]:
        return [
            (t, p) for t, p in zip(self._starts, self._powers)
            if t <= until_us
        ]
