"""Environment spec strings: the ``--env`` axis.

An environment is named by a compact spec string —
``kind:key=value,key=value`` — so it can travel through CLI flags,
campaign configs, serve store keys and corpus entries as one opaque
token::

    constant:level_mw=1000
    solar:peak_mw=8,day_ms=200,seed=3
    bursty:peak_mw=12,mean_gap_ms=12,seed=7
    markov:on_mw=8,mean_on_ms=10,mean_off_ms=40,tail=1.5,seed=0
    rf:distance_inch=58,seed=2
    trace:/path/to/power.jsonl

Environment-level knobs ride along with the source parameters:
``cap_uf`` (buffer capacitance, µF), ``start_v`` (initial voltage) and
``max_dark_ms`` (died-dark bound).

:func:`describe_env` returns the spec's canonical JSON-safe descriptor
for content addressing — for ``trace:`` specs the *file content digest*
stands in for the path, so moving a trace file never aliases two
different environments (and editing one never reuses stale cache
entries).
"""

from __future__ import annotations

import hashlib
import math
from functools import lru_cache
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.hw.energy import Capacitor
from repro.env.environment import (
    DEFAULT_CAPACITANCE_F,
    DEFAULT_MAX_DARK_US,
    EnergyEnvironment,
)
from repro.env.sources import (
    BurstySource,
    ConstantSource,
    EnergySource,
    MarkovSource,
    RFSource,
    SolarSource,
    TraceSource,
)

#: source kind -> (class, {param: coercion})
_SOURCES = {
    "constant": (ConstantSource, {"level_mw": float}),
    "solar": (SolarSource, {
        "peak_mw": float, "day_ms": float, "steps": int,
        "jitter_db": float, "seed": int,
    }),
    "bursty": (BurstySource, {
        "peak_mw": float, "base_mw": float, "mean_burst_ms": float,
        "mean_gap_ms": float, "jitter_db": float, "seed": int,
    }),
    "markov": (MarkovSource, {
        "on_mw": float, "mean_on_ms": float, "mean_off_ms": float,
        "tail": float, "seed": int,
    }),
    "rf": (RFSource, {
        "distance_inch": float, "tx_power_w": float, "tx_gain": float,
        "rx_gain": float, "frequency_mhz": float, "efficiency": float,
        "knee_mw": float, "fading_std_db": float, "fading_period_us": float,
        "seed": int,
    }),
}

#: environment-level (non-source) knobs
_ENV_KEYS = ("cap_uf", "start_v", "max_dark_ms")


def _split(spec: str) -> Tuple[str, str]:
    spec = spec.strip()
    if not spec:
        raise ReproError("empty environment spec")
    kind, _, rest = spec.partition(":")
    return kind.strip().lower(), rest.strip()


def _parse_params(rest: str) -> Dict[str, str]:
    params: Dict[str, str] = {}
    for item in filter(None, (p.strip() for p in rest.split(","))):
        key, sep, value = item.partition("=")
        if not sep:
            raise ReproError(
                f"malformed environment parameter {item!r} (want key=value)"
            )
        params[key.strip()] = value.strip()
    return params


def _coerce(kind: str, params: Dict[str, str]) -> Tuple[Dict, Dict]:
    cls, schema = _SOURCES[kind]
    source_kwargs: Dict[str, object] = {}
    env_kwargs: Dict[str, float] = {}
    for key, value in params.items():
        if key in _ENV_KEYS:
            env_kwargs[key] = float(value)
        elif key in schema:
            try:
                source_kwargs[key] = schema[key](value)
            except ValueError as exc:
                raise ReproError(
                    f"bad value for {kind} parameter {key}={value!r}"
                ) from exc
        else:
            raise ReproError(
                f"unknown parameter {key!r} for environment kind {kind!r} "
                f"(source params: {sorted(schema)}; env params: "
                f"{list(_ENV_KEYS)})"
            )
    return source_kwargs, env_kwargs


def _build_capacitor(env_kwargs: Dict[str, float]) -> Capacitor:
    cap_f = env_kwargs.get("cap_uf", DEFAULT_CAPACITANCE_F * 1e6) * 1e-6
    cap = Capacitor(capacitance_f=cap_f)
    start_v = env_kwargs.get("start_v")
    if start_v is not None:
        if not 0 < start_v <= cap.v_max:
            raise ReproError(
                f"start_v must be in (0, {cap.v_max}] (got {start_v})"
            )
        cap.voltage = float(start_v)
    return cap


def parse_env(
    spec: str, timer=None, max_dark_us: Optional[float] = None
) -> EnergyEnvironment:
    """Build the :class:`EnergyEnvironment` a spec string names."""
    kind, rest = _split(spec)
    if kind == "trace":
        from repro.env.trace import load_trace

        if not rest:
            raise ReproError("trace environment needs a path: trace:FILE")
        return load_trace(rest, timer=timer, spec=spec)
    if kind not in _SOURCES:
        raise ReproError(
            f"unknown environment kind {kind!r}; "
            f"choose from {sorted(_SOURCES)} or trace:FILE"
        )
    source_kwargs, env_kwargs = _coerce(kind, _parse_params(rest))
    source: EnergySource = _SOURCES[kind][0](**source_kwargs)
    dark = (
        max_dark_us if max_dark_us is not None
        else env_kwargs.get("max_dark_ms", DEFAULT_MAX_DARK_US / 1000.0) * 1000.0
    )
    return EnergyEnvironment(
        source,
        capacitor=_build_capacitor(env_kwargs),
        timer=timer,
        max_dark_us=dark,
        spec=spec,
    )


def describe_env(spec: Optional[str]) -> Optional[Dict[str, object]]:
    """Canonical content descriptor of a spec (store keys, reports).

    Memoized per process — campaigns call this once per work unit, and
    for ``trace:`` specs it hashes the file.
    """
    if spec is None:
        return None
    return _describe_cached(spec)


@lru_cache(maxsize=512)
def _describe_cached(spec: str) -> Dict[str, object]:
    kind, rest = _split(spec)
    if kind == "trace":
        try:
            with open(rest, "rb") as fh:
                digest = hashlib.sha256(fh.read()).hexdigest()
        except OSError as exc:
            raise ReproError(f"cannot read power trace {rest!r}: {exc}") from exc
        return {"kind": "trace", "content": digest}
    env = parse_env(spec)
    doc = dict(env.describe())
    if math.isinf(doc["max_dark_us"]):
        doc["max_dark_us"] = "inf"
    return doc


def random_env_spec(seed: int) -> str:
    """A seeded random environment spec (fuzzer / sweep generation).

    Deterministic in ``seed``; spans every stochastic source family
    with parameters in the regime where ms-scale workloads see real
    duty-cycling (on-power above typical draw, off-tails past typical
    ``Timely`` windows).
    """
    rng = np.random.default_rng(seed)
    kind = ("solar", "bursty", "markov", "rf")[int(rng.integers(0, 4))]
    sub = int(rng.integers(0, 2**31 - 1))
    cap_uf = float(rng.choice((1.0, 2.2, 4.7, 10.0)))
    if kind == "solar":
        return (
            f"solar:peak_mw={round(float(rng.uniform(4.0, 16.0)), 2)},"
            f"day_ms={round(float(rng.uniform(80.0, 400.0)), 1)},"
            f"seed={sub},cap_uf={cap_uf}"
        )
    if kind == "bursty":
        return (
            f"bursty:peak_mw={round(float(rng.uniform(6.0, 24.0)), 2)},"
            f"mean_burst_ms={round(float(rng.uniform(2.0, 8.0)), 2)},"
            f"mean_gap_ms={round(float(rng.uniform(6.0, 30.0)), 2)},"
            f"seed={sub},cap_uf={cap_uf}"
        )
    if kind == "markov":
        return (
            f"markov:on_mw={round(float(rng.uniform(4.0, 16.0)), 2)},"
            f"mean_on_ms={round(float(rng.uniform(4.0, 20.0)), 2)},"
            f"mean_off_ms={round(float(rng.uniform(10.0, 80.0)), 2)},"
            f"tail={round(float(rng.uniform(1.2, 2.5)), 2)},"
            f"seed={sub},cap_uf={cap_uf}"
        )
    return (
        f"rf:distance_inch={round(float(rng.uniform(52.0, 64.0)), 1)},"
        f"seed={sub},cap_uf={cap_uf}"
    )
