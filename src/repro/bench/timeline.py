"""ASCII timeline rendering of execution traces.

Turns a run's event trace into a human-readable timeline — what task
was attempting when, which I/O executed or was skipped, where power
failed — for debugging intermittent behaviour and for the CLI's
``--timeline`` flag.

Two views:

``render_events``
    a chronological listing with aligned columns (time, event, detail);

``render_lanes``
    a compact per-millisecond band: one character per time bucket,
    showing task activity (letters), power failures (``!``), skips
    (``~``) and completion (``$``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hw import trace as T
from repro.hw.trace import Trace

#: events worth showing in the listing, with short labels
_LISTED = {
    T.BOOT: "boot",
    T.POWER_FAILURE: "POWER FAIL",
    T.TASK_START: "task start",
    T.TASK_COMMIT: "commit",
    T.IO_EXEC: "io",
    T.IO_SKIP: "io skip",
    T.IO_SKIP_BLOCK: "block skip",
    T.DMA_EXEC: "dma",
    T.DMA_SKIP: "dma skip",
    T.PRIVATIZE: "privatize",
    T.RESTORE: "restore",
    T.PROGRAM_DONE: "DONE",
}


def _detail(event) -> str:
    d = event.detail
    parts: List[str] = []
    for key in ("task", "func", "site", "region", "next", "attempt",
                "classification", "phase", "step_category"):
        if key in d and d[key] is not None:
            parts.append(f"{key}={d[key]}")
    if d.get("repeat"):
        parts.append("REPEAT")
    return " ".join(parts)


def render_events(
    trace: Trace,
    limit: Optional[int] = None,
    kinds: Optional[List[str]] = None,
) -> str:
    """Chronological event listing.

    ``kinds`` filters to specific event kinds; ``limit`` keeps the last
    N entries.
    """
    rows = []
    for event in trace:
        if event.kind not in _LISTED:
            continue
        if kinds is not None and event.kind not in kinds:
            continue
        rows.append(
            f"{event.time_us / 1000.0:9.3f} ms  "
            f"{_LISTED[event.kind]:11s} {_detail(event)}".rstrip()
        )
    if limit is not None:
        rows = rows[-limit:]
    return "\n".join(rows)


def render_lanes(trace: Trace, bucket_us: float = 1000.0, width: int = 72) -> str:
    """Compact activity band, one character per time bucket.

    Letters identify the active task (``a`` for the first task seen,
    ``b`` for the second...); ``!`` marks a bucket containing a power
    failure, ``~`` a bucket where work was skipped, ``$`` completion,
    ``.`` darkness/idle.
    """
    if not trace.events:
        return "(no events recorded)"
    end_us = trace.events[-1].time_us
    n_buckets = min(width, max(1, int(end_us / bucket_us) + 1))
    bucket_us = max(bucket_us, end_us / n_buckets + 1e-9)

    letters: Dict[str, str] = {}

    def letter(task: str) -> str:
        if task not in letters:
            letters[task] = chr(ord("a") + (len(letters) % 26))
        return letters[task]

    band = ["."] * n_buckets
    current = "."
    for event in trace.events:
        idx = min(n_buckets - 1, int(event.time_us / bucket_us))
        if event.kind == T.TASK_START:
            current = letter(str(event.detail.get("task", "?")))
        if event.kind == T.POWER_FAILURE:
            band[idx] = "!"
            current = "."
            continue
        if event.kind == T.PROGRAM_DONE:
            band[idx] = "$"
            continue
        if event.kind in (T.IO_SKIP, T.DMA_SKIP, T.IO_SKIP_BLOCK):
            if band[idx] not in ("!", "$"):
                band[idx] = "~"
            continue
        if band[idx] == ".":
            band[idx] = current

    legend = ", ".join(f"{v}={k}" for k, v in letters.items())
    scale = f"0 .. {end_us / 1000.0:.1f} ms ({bucket_us / 1000.0:.2f} ms/char)"
    return (
        f"|{''.join(band)}|\n"
        f" tasks: {legend}\n"
        f" marks: ! failure, ~ skipped work, $ done, . dark/idle\n"
        f" scale: {scale}"
    )
