"""Benchmark harness regenerating every table and figure of the paper.

``repro.bench.experiments`` holds one function per table/figure;
``python -m repro.bench`` runs them all and prints the report.
"""

from repro.bench.experiments import EXPERIMENTS, ExperimentResult
from repro.bench.runner import Aggregate, rf_distance_harvester, run_many

__all__ = [
    "Aggregate",
    "EXPERIMENTS",
    "ExperimentResult",
    "rf_distance_harvester",
    "run_many",
]
