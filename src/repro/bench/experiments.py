"""One function per table/figure of the paper's evaluation.

Every function runs the corresponding experiment on the simulator and
returns an :class:`ExperimentResult` whose ``text`` holds the same
rows/series the paper reports.  Repetition counts default to values
that finish in seconds; pass larger ``reps`` (the paper uses 1000) for
tighter averages — the *shapes* (who wins, by roughly what factor,
where crossovers fall) are stable from a few dozen repetitions.

Index (see DESIGN.md section 4):

=========== =======================================================
table1      qualitative feature matrix
table3      tasks / I/O functions per application
figure7     uni-task time breakdown (app / overhead / wasted)
table4      power failures and I/O re-executions per semantic
figure8     uni-task average energy
figure10    multi-task time breakdown (incl. "EaseIO/Op")
figure11    multi-task average energy
figure12    FIR correct vs incorrect executions
table5      weather DNN single vs double buffering
table6      memory and code-size requirements
figure13    RF-harvester distance sweep
=========== =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.apps import APPS, fir as fir_app, weather as weather_app
from repro.bench.report import render_aggregates, render_breakdown, render_table
from repro.bench.runner import Aggregate, run_many
from repro.core.run import build_runtime, run_program
from repro.hw.energy import Capacitor
from repro.kernel.power import NoFailures

RUNTIME_ORDER = ("alpaca", "ink", "easeio")

#: capacitor used for the harvesting experiment: the paper's board
#: buffers ~1 mF for a seconds-scale workload; our workload is
#: milliseconds-scale, so the buffer is scaled to keep the same
#: charge-cycles-per-run regime (documented in DESIGN.md).
FIG13_CAPACITOR = Capacitor(capacitance_f=12e-6)


@dataclass
class ExperimentResult:
    """Rendered output plus structured data for assertions."""

    exp_id: str
    title: str
    text: str
    aggregates: List[Aggregate] = field(default_factory=list)
    rows: List[dict] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"== {self.exp_id}: {self.title} ==\n{self.text}\n"


# ---------------------------------------------------------------------------
# Table 1 — qualitative feature matrix
# ---------------------------------------------------------------------------


def table1() -> ExperimentResult:
    """Feature comparison of the implemented runtimes (static)."""
    headers = [
        "runtime", "repeats I/O", "wasted I/O", "inconsistency via I/O",
        "safe DMA", "timely I/O", "semantic-aware re-exec",
    ]
    rows = [
        ["alpaca", "yes", "high", "yes", "no", "no", "no"],
        ["ink", "yes", "high", "yes (DMA)", "no", "no", "no"],
        ["samoyed", "yes (atomic units)", "medium", "yes (atomic units)",
         "no", "no", "no"],
        ["easeio", "no/low", "no", "no", "yes", "yes", "yes"],
    ]
    return ExperimentResult(
        "table1", "Main features of the runtimes",
        render_table(headers, rows),
        rows=[dict(zip(headers, r)) for r in rows],
    )


# ---------------------------------------------------------------------------
# Table 3 — application inventory
# ---------------------------------------------------------------------------


def table3() -> ExperimentResult:
    """Tasks and I/O functions of the evaluated applications."""
    headers = ["app", "tasks", "io_funcs", "easeio_regions"]
    rows = []
    for name in ("uni_lea", "uni_dma", "uni_temp", "fir", "weather"):
        program = APPS[name].build()
        rt = build_runtime(program, "easeio", trace_events=False)
        regions = sum(
            len(info.regions) for info in rt._info.values()  # noqa: SLF001
        )
        # the paper counts the accelerator as one I/O function and the
        # DMA engine as one where it is the only peripheral
        funcs = {
            "lea" if f.startswith("lea.") else f
            for f in program.io_function_names()
        }
        has_dma = any(
            stmt.__class__.__name__ == "DMACopy"
            for task in program.tasks
            for stmt in task.walk()
        )
        if has_dma and not funcs:
            funcs.add("dma")
        rows.append([name, len(program.tasks), len(funcs), regions])
    return ExperimentResult(
        "table3", "Tasks and I/O functions of evaluated applications",
        render_table(headers, rows),
        rows=[dict(zip(headers, r)) for r in rows],
    )


# ---------------------------------------------------------------------------
# Figure 7 / Table 4 / Figure 8 — uni-task phase
# ---------------------------------------------------------------------------

_UNI_APPS = (
    ("uni_dma", "Single semantic - NVM to NVM DMA (Fig. 7a)"),
    ("uni_temp", "Timely semantic - temperature sensing (Fig. 7b)"),
    ("uni_lea", "Always semantic - LEA (Fig. 7c)"),
)


def _uni_aggregates(reps: int, seed0: int = 0) -> Dict[str, List[Aggregate]]:
    out: Dict[str, List[Aggregate]] = {}
    for app_name, _title in _UNI_APPS:
        out[app_name] = [
            run_many(APPS[app_name], rt, reps=reps, seed0=seed0)
            for rt in RUNTIME_ORDER
        ]
    return out


def figure7(reps: int = 60, seed0: int = 0) -> ExperimentResult:
    """Total execution time / overhead / wasted work, uni-task apps."""
    data = _uni_aggregates(reps, seed0)
    sections = [
        render_breakdown(title, data[app]) for app, title in _UNI_APPS
    ]
    aggregates = [a for app, _ in _UNI_APPS for a in data[app]]
    return ExperimentResult(
        "figure7", "Uni-task execution time breakdown",
        "\n\n".join(sections), aggregates=aggregates,
    )


def table4(reps: int = 60, seed0: int = 0) -> ExperimentResult:
    """Power failures and redundant re-executions per semantic."""
    data = _uni_aggregates(reps, seed0)
    headers = ["app", "runtime", "PF_total", "reexec_total", "reexec_vs_alpaca"]
    rows = []
    for app_name, _ in _UNI_APPS:
        base = data[app_name][0].io_reexecs  # alpaca
        for agg in data[app_name]:
            rel = (
                f"{(agg.io_reexecs - base) / base * 100.0:+.0f}%"
                if base > 0
                else "n/a"
            )
            rows.append(
                [
                    app_name,
                    agg.label,
                    int(round(agg.failures * reps)),
                    int(round(agg.io_reexecs * reps)),
                    rel,
                ]
            )
    aggregates = [a for app, _ in _UNI_APPS for a in data[app]]
    return ExperimentResult(
        "table4", "Power failures and I/O re-executions",
        render_table(headers, rows),
        aggregates=aggregates,
        rows=[dict(zip(headers, r)) for r in rows],
    )


def figure8(reps: int = 60, seed0: int = 0) -> ExperimentResult:
    """Average energy consumption per re-execution semantic."""
    data = _uni_aggregates(reps, seed0)
    headers = ["semantic", "app"] + list(RUNTIME_ORDER) + ["easeio_vs_alpaca"]
    semantic_of = {"uni_dma": "Single", "uni_temp": "Timely", "uni_lea": "Always"}
    rows = []
    for app_name, _ in _UNI_APPS:
        energies = {a.label: a.energy_uj for a in data[app_name]}
        rel = (energies["easeio"] - energies["alpaca"]) / energies["alpaca"] * 100.0
        rows.append(
            [semantic_of[app_name], app_name]
            + [round(energies[rt], 1) for rt in RUNTIME_ORDER]
            + [f"{rel:+.0f}%"]
        )
    aggregates = [a for app, _ in _UNI_APPS for a in data[app]]
    return ExperimentResult(
        "figure8", "Average energy per re-execution semantic (uJ)",
        render_table(headers, rows),
        aggregates=aggregates,
        rows=[dict(zip(headers, r)) for r in rows],
    )


# ---------------------------------------------------------------------------
# Figure 10 / Figure 11 — multi-task phase
# ---------------------------------------------------------------------------


def _multitask_aggregates(reps: int, seed0: int = 0) -> Dict[str, List[Aggregate]]:
    out: Dict[str, List[Aggregate]] = {}
    for app_name, op_kwargs in (
        ("fir", {"exclude_coeffs": True}),
        ("weather", {"exclude_weights": True}),
    ):
        spec = APPS[app_name]
        aggs = [
            run_many(spec, rt, reps=reps, seed0=seed0) for rt in RUNTIME_ORDER
        ]
        aggs.append(
            run_many(
                spec, "easeio", reps=reps, seed0=seed0,
                label="easeio/op", build_kwargs=op_kwargs,
            )
        )
        out[app_name] = aggs
    return out


def figure10(reps: int = 50, seed0: int = 0) -> ExperimentResult:
    """Execution time breakdown, FIR filter and weather classifier."""
    data = _multitask_aggregates(reps, seed0)
    sections = [
        render_breakdown("FIR filter", data["fir"]),
        render_breakdown("Weather classifier", data["weather"]),
    ]
    aggregates = data["fir"] + data["weather"]
    return ExperimentResult(
        "figure10", "Multi-task execution time breakdown",
        "\n\n".join(sections), aggregates=aggregates,
    )


def figure11(reps: int = 50, seed0: int = 0) -> ExperimentResult:
    """Average energy consumption of the multi-task applications."""
    data = _multitask_aggregates(reps, seed0)
    headers = ["app"] + [a.label for a in data["fir"]] + ["easeio_vs_alpaca"]
    rows = []
    for app_name in ("fir", "weather"):
        energies = [a.energy_uj for a in data[app_name]]
        rel = (energies[2] - energies[0]) / energies[0] * 100.0
        rows.append([app_name] + [round(e, 1) for e in energies] + [f"{rel:+.0f}%"])
    aggregates = data["fir"] + data["weather"]
    return ExperimentResult(
        "figure11", "Multi-task average energy (uJ)",
        render_table(headers, rows),
        aggregates=aggregates,
        rows=[dict(zip(headers, r)) for r in rows],
    )


# ---------------------------------------------------------------------------
# Figure 12 — FIR execution correctness
# ---------------------------------------------------------------------------


def figure12(reps: int = 200, seed0: int = 0) -> ExperimentResult:
    """Correct vs incorrect FIR executions under WAR-laden DMA."""
    headers = ["runtime", "correct", "incorrect", "incorrect_pct"]
    rows = []
    aggregates = []
    for rt in RUNTIME_ORDER:
        agg = run_many(
            APPS["fir"], rt, reps=reps, seed0=seed0,
            consistency=fir_app.check_consistency,
        )
        aggregates.append(agg)
        rows.append(
            [rt, agg.correct, agg.incorrect, f"{agg.incorrect / reps * 100:.1f}%"]
        )
    return ExperimentResult(
        "figure12", "FIR execution correctness",
        render_table(headers, rows),
        aggregates=aggregates,
        rows=[dict(zip(headers, r)) for r in rows],
    )


# ---------------------------------------------------------------------------
# Table 5 — single vs double buffered DNN
# ---------------------------------------------------------------------------


def table5(reps: int = 80, seed0: int = 0) -> ExperimentResult:
    """Execution time and correctness of the weather DNN per buffering."""
    headers = [
        "runtime", "buffers", "cont_ms", "int_ms", "correct", "incorrect",
    ]
    rows = []
    aggregates = []
    for buffers in ("double", "single"):
        for rt in RUNTIME_ORDER:
            agg = run_many(
                APPS["weather"], rt, reps=reps, seed0=seed0,
                build_kwargs={"buffers": buffers},
                consistency=weather_app.check_consistency,
            )
            aggregates.append(agg)
            rows.append(
                [rt, buffers, round(agg.app_ms, 2), round(agg.total_ms, 2),
                 agg.correct, agg.incorrect]
            )
    return ExperimentResult(
        "table5", "Weather DNN: double vs single activation buffer",
        render_table(headers, rows),
        aggregates=aggregates,
        rows=[dict(zip(headers, r)) for r in rows],
    )


# ---------------------------------------------------------------------------
# Table 6 — memory and code size
# ---------------------------------------------------------------------------


def table6() -> ExperimentResult:
    """Memory and code-size requirements (bytes), per app per runtime.

    ``text`` is the statement-count code-size proxy; RAM is SRAM +
    LEA-RAM allocation; FRAM is the non-volatile allocation including
    runtime metadata, privatization copies and the DMA buffer.
    """
    headers = ["app", "runtime", "text_B", "ram_B", "fram_B"]
    rows = []
    for app_name in ("uni_lea", "uni_dma", "uni_temp", "fir", "weather"):
        for rt_name in RUNTIME_ORDER:
            rt = build_runtime(
                APPS[app_name].build(), rt_name, trace_events=False
            )
            fp = rt.machine.memory_footprint()
            rows.append(
                [
                    app_name,
                    rt_name,
                    rt.text_proxy(),
                    fp["sram"] + fp["learam"],
                    fp["fram"],
                ]
            )
    return ExperimentResult(
        "table6", "Memory and code size requirements (B)",
        render_table(headers, rows),
        rows=[dict(zip(headers, r)) for r in rows],
    )


# ---------------------------------------------------------------------------
# Figure 13 — real-harvester distance sweep
# ---------------------------------------------------------------------------

FIG13_DISTANCES = (52.0, 55.0, 58.0, 61.0, 64.0)


def fig13_environment(distance_inch: float, seed: int = 0):
    """The Figure-13 testbed as an energy environment.

    Same link physics as the legacy ``rf_distance_harvester`` path,
    but expressed through :mod:`repro.env`: the RF source charges the
    board capacitor against the workload's draw and failures *emerge*
    from the energy budget — so the sweep is an ``--env`` spec away
    from any check/fuzz/sweep campaign (``rf:distance_inch=...``).
    The buffer starts at the turn-on threshold: the device has just
    woken, not banked a full charge.
    """
    from repro.env import EnergyEnvironment, RFSource

    cap = Capacitor(capacitance_f=FIG13_CAPACITOR.capacitance_f)
    cap.voltage = cap.v_on
    return EnergyEnvironment(
        RFSource(distance_inch, seed=seed),
        capacitor=cap,
        spec=f"rf:distance_inch={distance_inch},seed={seed},"
             f"cap_uf={FIG13_CAPACITOR.capacitance_f * 1e6:g},"
             f"start_v={cap.v_on:g}",
    )


def figure13(reps: int = 20, seed0: int = 0) -> ExperimentResult:
    """Execution-time difference vs EaseIO/Op across RF distances.

    Positive values mean the configuration is *slower* than EaseIO/Op
    at that distance (the paper's normalization).
    """
    spec = APPS["fir"]
    configs = [
        ("easeio/op", "easeio", {"exclude_coeffs": True}),
        ("easeio", "easeio", {}),
        ("ink", "ink", {}),
        ("alpaca", "alpaca", {}),
    ]
    headers = ["distance_in", "harvest_mW"] + [c[0] for c in configs] + [
        "diff_easeio_ms", "diff_ink_ms", "diff_alpaca_ms"
    ]
    rows = []
    aggregates = []
    for d in FIG13_DISTANCES:
        mean_mw = fig13_environment(d).source.mean_power_mw()
        wall: Dict[str, float] = {}
        for label, rt, kwargs in configs:
            agg = run_many(
                spec, rt, reps=reps, seed0=seed0, label=f"{label}@{d}in",
                build_kwargs=kwargs,
                env=lambda rep, _d=d: fig13_environment(_d, seed=seed0 + rep),
            )
            aggregates.append(agg)
            wall[label] = agg.wall_ms
        base = wall["easeio/op"]
        rows.append(
            [d, round(mean_mw, 3)]
            + [round(wall[c[0]], 2) for c in configs]
            + [round(wall["easeio"] - base, 2),
               round(wall["ink"] - base, 2),
               round(wall["alpaca"] - base, 2)]
        )
    return ExperimentResult(
        "figure13", "Wall-clock vs distance, normalized to EaseIO/Op (ms)",
        render_table(headers, rows),
        aggregates=aggregates,
        rows=[dict(zip(headers, r)) for r in rows],
    )


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1,
    "table3": table3,
    "figure7": figure7,
    "table4": table4,
    "figure8": figure8,
    "figure10": figure10,
    "figure11": figure11,
    "figure12": figure12,
    "table5": table5,
    "table6": table6,
    "figure13": figure13,
}
