"""ASCII rendering of experiment results.

The harness prints the same rows/series the paper's tables and figures
report; these helpers keep the formatting in one place so benchmark
output, the CLI and EXPERIMENTS.md stay consistent.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.bench.runner import Aggregate


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain fixed-width table."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(v) for v in row] for row in rows
    ]
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_breakdown(title: str, aggregates: Sequence[Aggregate], width: int = 50) -> str:
    """Stacked-bar text rendering of the Figure 7/10 time breakdown.

    Each row shows App / Overhead / Wasted segments scaled to the
    longest total, mirroring the paper's horizontal stacked bars.
    """
    if not aggregates:
        return title
    scale = max(a.app_ms + a.overhead_ms + a.wasted_ms for a in aggregates)
    scale = max(scale, 1e-9)
    lines = [title]
    for a in aggregates:
        app_w = int(round(width * a.app_ms / scale))
        ovh_w = int(round(width * a.overhead_ms / scale))
        was_w = int(round(width * a.wasted_ms / scale))
        bar = "#" * app_w + "o" * ovh_w + "." * was_w
        lines.append(
            f"  {a.label:>10s} |{bar:<{width}s}| "
            f"app={a.app_ms:7.2f}ms ovh={a.overhead_ms:6.2f}ms "
            f"wasted={a.wasted_ms:7.2f}ms total={a.total_ms:7.2f}ms"
        )
    lines.append(f"  {'':>10s}  (# app, o overhead, . wasted)")
    return "\n".join(lines)


def render_aggregates(
    title: str, aggregates: Sequence[Aggregate], extra: Sequence[str] = ()
) -> str:
    """Generic aggregate table with the standard metric columns."""
    headers = [
        "app", "runtime", "app_ms", "ovh_ms", "wasted_ms", "total_ms",
        "failures", "reexec", "skips", "energy_uJ",
    ] + list(extra)
    rows = []
    for a in aggregates:
        row: List[object] = [
            a.app, a.label, a.app_ms, a.overhead_ms, a.wasted_ms,
            a.total_ms, a.failures, a.io_reexecs, a.io_skips, a.energy_uj,
        ]
        for name in extra:
            row.append(getattr(a, name))
        rows.append(row)
    return f"{title}\n{render_table(headers, rows)}"
