"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench                 # everything, default reps
    python -m repro.bench figure7 table4  # a subset
    python -m repro.bench --reps 200      # heavier averaging
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro.bench.experiments import EXPERIMENTS


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "perf":
        # the perf harness has its own flags; hand the rest through
        from repro.bench.perf import main as perf_main

        return perf_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the EaseIO paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help=f"subset to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--reps", type=int, default=None,
        help="repetitions per experiment cell (paper: 1000)",
    )
    args = parser.parse_args(argv)

    names = args.experiments or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    for name in names:
        fn = EXPERIMENTS[name]
        kwargs = {}
        if args.reps is not None and "reps" in inspect.signature(fn).parameters:
            kwargs["reps"] = args.reps
        start = time.time()
        result = fn(**kwargs)
        elapsed = time.time() - start
        print(f"== {result.exp_id}: {result.title} ==  [{elapsed:.1f}s]")
        print(result.text)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
