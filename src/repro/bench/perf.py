"""Performance-regression harness for the simulator itself.

The paper's evaluation pipeline is simulation-bound: exhaustive
fault-injection campaigns execute one run per step boundary, and every
figure averages tens-to-hundreds of repetitions per cell.  This module
times that pipeline end-to-end on a small, fixed set of
macro-benchmarks and writes the numbers to ``BENCH_sim.json`` so a
change that slows the simulator down is caught by diffing the file (CI
uploads it as an artifact on every run).

Benchmarks (deterministic, fixed seeds):

``campaign_uni_dma``
    the exhaustive single-failure checking campaign of ``uni_dma`` on
    EaseIO, single worker — the checker's hot loop;
``run_many_dnn``
    ``run_many`` of the 11-task DNN weather classifier (the paper's
    ``dnn`` workload), 50 repetitions on EaseIO — the Figure 10 loop;
``run_many_fir``
    ``run_many`` of the FIR app, 50 repetitions on EaseIO;
``continuous_fir``
    back-to-back continuous-power FIR runs — pure interpreter speed,
    no failure machinery.

``--compare`` runs every benchmark three times: on the **reference
path** (``repro.fastpath`` disabled — the simulator exactly as it
behaved before the fast path existed), on the fast path, and on the
**bytecode VM** path (``repro.vm``), recording the honest same-machine
speedup of both accelerated paths.  Timed walls are the best of
``--repeats`` back-to-back passes (min-of-N, the standard defence
against scheduler noise).

``BENCH_sim.json`` is a *trajectory*, not a snapshot: every invocation
appends a ``history`` entry (git rev, date, per-benchmark speedups) to
whatever document already exists at ``--output``, and ``--trend``
renders the accumulated series without running anything.  ``--vm-floor
X`` fails the suite when any compared benchmark's VM speedup drops
below ``X`` — the CI regression gate for the VM path.

Every timed benchmark also runs under an ambient
:class:`~repro.obs.metrics.MetricsRegistry` (:func:`collecting`), so
``BENCH_sim.json`` records *what* each benchmark simulated (runs,
failures, I/O, commits, energy) alongside how long it took — a perf
number whose workload silently changed is no longer comparable, and now
the file says so.  ``--metrics-gate PCT`` additionally times each
benchmark with collection off and on, failing the suite when ambient
metrics collection costs more than ``PCT`` percent of fastpath
throughput — the zero-overhead contract of the obs hook, enforced.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List, Optional

from repro import fastpath
from repro.obs import metrics as obs_metrics
from repro.obs import series as obs_series
from repro.obs.series import git_rev as _git_rev

#: file format version for BENCH_sim.json consumers
SCHEMA = "repro.bench.perf/2"

#: the stable subset of ambient counters recorded per benchmark —
#: workload identity, not the full registry dump
SNAPSHOT_COUNTERS = (
    "runs",
    "runs.completed",
    "power.failures",
    "task.commits",
    "io.executed",
    "io.reexecuted",
    "io.skipped",
    "dma.copies",
    "dma.skipped",
    "priv.bytes",
    "reexecutions",
)


# -- benchmark bodies -------------------------------------------------------
#
# Each returns the number of simulated runs it performed, so the harness
# can report a throughput (runs/s) alongside the wall clock.


def _bench_campaign_uni_dma(quick: bool) -> int:
    from repro.check.campaign import CampaignConfig, run_campaign

    cfg = CampaignConfig(
        app="uni_dma",
        runtime="easeio",
        mode="exhaustive",
        workers=1,
        limit=40 if quick else None,
        shrink=False,
    )
    report = run_campaign(cfg)
    # +2: the oracle run and the boundary probe are simulated runs too
    return report.n_runs + 2


def _bench_run_many_dnn(quick: bool) -> int:
    from repro.apps import APPS
    from repro.bench.runner import run_many

    reps = 10 if quick else 50
    run_many(APPS["weather"], "easeio", reps=reps, seed0=0, env_seed=1)
    return reps + 1  # +1: the continuous-power "App bar" run


def _bench_run_many_fir(quick: bool) -> int:
    from repro.apps import APPS
    from repro.bench.runner import run_many

    reps = 10 if quick else 50
    run_many(APPS["fir"], "easeio", reps=reps, seed0=0, env_seed=1)
    return reps + 1


def _bench_continuous_fir(quick: bool) -> int:
    from repro.core.run import run_app
    from repro.kernel.power import NoFailures

    reps = 20 if quick else 100
    for _ in range(reps):
        run_app(
            "fir",
            runtime="easeio",
            failure_model=NoFailures(),
            seed=1,
            trace_events=False,
            reuse_machine=True,
        )
    return reps


#: registry order is the execution (and report) order
BENCHMARKS: Dict[str, Callable[[bool], int]] = {
    "campaign_uni_dma": _bench_campaign_uni_dma,
    "run_many_dnn": _bench_run_many_dnn,
    "run_many_fir": _bench_run_many_fir,
    "continuous_fir": _bench_continuous_fir,
}


def select_benchmarks(names: Optional[List[str]] = None) -> List[str]:
    """The benchmarks to run, in deterministic registry order."""
    if not names:
        return list(BENCHMARKS)
    unknown = sorted(set(names) - set(BENCHMARKS))
    if unknown:
        raise ValueError(
            f"unknown benchmarks {unknown}; available: {list(BENCHMARKS)}"
        )
    return [name for name in BENCHMARKS if name in set(names)]


def _metrics_snapshot(reg) -> Dict[str, object]:
    c = reg.counters
    out: Dict[str, object] = {}
    for key in SNAPSHOT_COUNTERS:
        v = c.get(key)
        if v:
            out[key] = round(v, 2) if isinstance(v, float) else v
    uj = c.get("energy.total_uj")
    if uj:
        out["energy.total_uj"] = round(uj, 1)
    return out


def _time_once(
    name: str, quick: bool, collect: bool = True, repeats: int = 1
) -> Dict[str, object]:
    wall = None
    runs = 0
    metrics = None
    for _ in range(max(1, repeats)):
        fastpath.clear_caches()
        if collect:
            with obs_metrics.collecting() as reg:
                t0 = time.perf_counter()
                runs = BENCHMARKS[name](quick)
                pass_wall = time.perf_counter() - t0
            metrics = _metrics_snapshot(reg)
        else:
            t0 = time.perf_counter()
            runs = BENCHMARKS[name](quick)
            pass_wall = time.perf_counter() - t0
        if wall is None or pass_wall < wall:
            wall = pass_wall
    entry: Dict[str, object] = {
        "name": name,
        "runs": runs,
        "wall_s": round(wall, 4),
        "runs_per_s": round(runs / wall, 2) if wall > 0 else None,
    }
    if metrics is not None:
        entry["metrics"] = metrics
    return entry


def run_suite(
    names: Optional[List[str]] = None,
    quick: bool = False,
    compare: bool = False,
    metrics_gate: Optional[float] = None,
    repeats: int = 1,
) -> Dict[str, object]:
    """Execute the suite; returns the BENCH_sim.json document.

    ``compare`` times each benchmark on the reference path, the fast
    path and the VM path back-to-back; each wall is the min of
    ``repeats`` passes.  ``metrics_gate`` (a percentage) times every
    benchmark twice on the fast path — ambient metrics collection off,
    then on — and marks the document as failed when total with-metrics
    wall clock exceeds the plain wall clock by more than that
    percentage.  All timings of one benchmark run back-to-back on the
    same machine, so comparisons are robust to absolute machine speed.
    """
    selected = select_benchmarks(names)
    results: List[Dict[str, object]] = []
    was_enabled = fastpath.enabled()
    was_vm = fastpath.vm_enabled()
    plain_total = 0.0
    collected_total = 0.0
    try:
        for name in selected:
            entry: Dict[str, object]
            if compare:
                fastpath.set_vm_enabled(False)
                fastpath.set_enabled(False)
                before = _time_once(name, quick, repeats=repeats)
                fastpath.set_enabled(True)
                entry = _time_once(name, quick, repeats=repeats)
                fastpath.set_vm_enabled(True)
                vm_entry = _time_once(name, quick, repeats=repeats)
                fastpath.set_vm_enabled(False)
                entry["baseline_wall_s"] = before["wall_s"]
                entry["baseline_runs_per_s"] = before["runs_per_s"]
                entry["vm_wall_s"] = vm_entry["wall_s"]
                entry["vm_runs_per_s"] = vm_entry["runs_per_s"]
                wall = float(entry["wall_s"])  # type: ignore[arg-type]
                vm_wall = float(vm_entry["wall_s"])  # type: ignore[arg-type]
                base = float(before["wall_s"])  # type: ignore[arg-type]
                entry["speedup"] = round(base / wall, 2) if wall > 0 else None
                entry["vm_speedup"] = (
                    round(base / vm_wall, 2) if vm_wall > 0 else None
                )
            elif metrics_gate is not None:
                plain = _time_once(name, quick, collect=False, repeats=repeats)
                entry = _time_once(name, quick, collect=True, repeats=repeats)
                entry["plain_wall_s"] = plain["wall_s"]
                plain_wall = float(plain["wall_s"])  # type: ignore[arg-type]
                wall = float(entry["wall_s"])  # type: ignore[arg-type]
                plain_total += plain_wall
                collected_total += wall
                entry["metrics_overhead"] = (
                    round(wall / plain_wall, 4) if plain_wall > 0 else None
                )
            else:
                entry = _time_once(name, quick, repeats=repeats)
            results.append(entry)
            print(_format_entry(entry), file=sys.stderr, flush=True)
    finally:
        fastpath.set_enabled(was_enabled)
        fastpath.set_vm_enabled(was_vm)
    doc: Dict[str, object] = {
        "schema": SCHEMA,
        "git_rev": _git_rev(),
        "date": time.strftime("%Y-%m-%d"),
        "fastpath": was_enabled,
        "quick": quick,
        "compare": compare,
        "repeats": max(1, repeats),
        "benchmarks": results,
    }
    if metrics_gate is not None:
        overhead_pct = (
            (collected_total / plain_total - 1.0) * 100.0
            if plain_total > 0 else 0.0
        )
        doc["metrics_gate_pct"] = metrics_gate
        doc["metrics_overhead_pct"] = round(overhead_pct, 2)
        doc["metrics_gate_ok"] = overhead_pct <= metrics_gate
        print(
            f"[perf] metrics collection overhead: {overhead_pct:+.2f}% "
            f"(gate {metrics_gate}%): "
            f"{'OK' if doc['metrics_gate_ok'] else 'FAIL'}",
            file=sys.stderr, flush=True,
        )
    return doc


def _format_entry(entry: Dict[str, object]) -> str:
    line = (
        f"[perf] {entry['name']}: {entry['wall_s']}s "
        f"({entry['runs']} runs, {entry['runs_per_s']} runs/s)"
    )
    if "speedup" in entry:
        line += (
            f"  vs reference {entry['baseline_wall_s']}s "
            f"-> fastpath {entry['speedup']}x"
        )
    if "vm_speedup" in entry:
        line += f", vm {entry['vm_wall_s']}s -> {entry['vm_speedup']}x"
    return line


# -- the history trajectory -------------------------------------------------


def history_entry(doc: Dict[str, object]) -> Dict[str, object]:
    """Condense one suite document into a trajectory point."""
    speedups: Dict[str, object] = {}
    for bench in doc.get("benchmarks", ()):  # type: ignore[union-attr]
        cell: Dict[str, object] = {"wall_s": bench.get("wall_s")}
        if bench.get("speedup") is not None:
            cell["fastpath"] = bench["speedup"]
        if bench.get("vm_speedup") is not None:
            cell["vm"] = bench["vm_speedup"]
        speedups[bench["name"]] = cell
    return {
        "rev": doc.get("git_rev", "unknown"),
        "date": doc.get("date"),
        "quick": doc.get("quick", False),
        "speedups": speedups,
    }


def append_history(
    doc: Dict[str, object], output_path: str
) -> Dict[str, object]:
    """Fold the previous document's trajectory into ``doc``.

    The file at ``output_path`` (when present and parseable) donates
    its ``history`` list; the new document appends its own condensed
    entry.  Corrupt or pre-history files degrade to an empty list, so
    the trajectory is always well-formed going forward.
    """
    history: List[Dict[str, object]] = []
    try:
        with open(output_path) as fh:
            prev = json.load(fh)
        prior = prev.get("history", [])
        if isinstance(prior, list):
            history = prior
    except (OSError, ValueError):
        pass
    history.append(history_entry(doc))
    doc["history"] = history
    return doc


def format_trend(doc: Dict[str, object]) -> str:
    """Render the accumulated history as an aligned text table."""
    history = doc.get("history")
    if not history:
        return "no history recorded yet; run the suite first"
    names: List[str] = []
    for point in history:
        for name in point.get("speedups", {}):
            if name not in names:
                names.append(name)
    header = ["rev", "date", "q"] + names
    rows = [header]
    for point in history:
        row = [
            str(point.get("rev", "?")),
            str(point.get("date", "?")),
            "q" if point.get("quick") else "-",
        ]
        for name in names:
            cell = point.get("speedups", {}).get(name)
            if not cell:
                row.append("-")
                continue
            parts = []
            if "fastpath" in cell:
                parts.append(f"fast {cell['fastpath']}x")
            if "vm" in cell:
                parts.append(f"vm {cell['vm']}x")
            if not parts:
                parts.append(f"{cell.get('wall_s')}s")
            row.append(" ".join(parts))
        rows.append(row)
    widths = [
        max(len(row[i]) for row in rows) for i in range(len(header))
    ]
    lines = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        for row in rows
    ]
    lines.insert(1, "  ".join("-" * w for w in widths))
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench perf",
        description="Time the simulation pipeline's macro-benchmarks.",
    )
    parser.add_argument(
        "benchmarks", nargs="*",
        help=f"subset to run (default: all of {', '.join(BENCHMARKS)})",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller workloads (CI smoke; not comparable to full runs)",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="also time the reference (pre-fast-path) simulator and "
             "record speedups",
    )
    parser.add_argument(
        "--metrics-gate", type=float, default=None, metavar="PCT",
        help="time each benchmark with ambient metrics collection off "
             "and on; exit 1 if collection costs more than PCT percent "
             "of fastpath wall clock",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, metavar="N",
        help="timed passes per path; the recorded wall is the fastest "
             "(min-of-N noise suppression, default 3)",
    )
    parser.add_argument(
        "--vm-floor", type=float, default=None, metavar="X",
        help="with --compare: exit 1 if any benchmark's VM speedup "
             "falls below X (the CI regression floor)",
    )
    parser.add_argument(
        "--trend", action="store_true",
        help="print the accumulated speedup trajectory from the output "
             "file and exit (runs nothing)",
    )
    parser.add_argument(
        "--output", default="BENCH_sim.json",
        help="where to write the results (default: ./BENCH_sim.json)",
    )
    parser.add_argument(
        "--series", default=None, metavar="FILE",
        help="also append a perf point to this obs series file "
             "(REPRO_OBS_SERIES works too); obs trends reads it",
    )
    args = parser.parse_args(argv)
    if args.trend:
        try:
            with open(args.output) as fh:
                doc = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"cannot read {args.output}: {exc}", file=sys.stderr)
            return 1
        print(format_trend(doc))
        return 0
    if args.compare and args.metrics_gate is not None:
        parser.error("--compare and --metrics-gate are mutually exclusive")
    if args.vm_floor is not None and not args.compare:
        parser.error("--vm-floor requires --compare")
    try:
        doc = run_suite(
            names=args.benchmarks,
            quick=args.quick,
            compare=args.compare,
            metrics_gate=args.metrics_gate,
            repeats=args.repeats,
        )
    except ValueError as exc:
        parser.error(str(exc))
    append_history(doc, args.output)
    with open(args.output, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output} (git {doc['git_rev']})")
    if args.series:
        obs_series.activate(args.series)
    # no-op unless a series store is active (flag, activate(), env var)
    obs_series.record_perf_point(doc)
    failed = False
    if args.metrics_gate is not None and not doc.get("metrics_gate_ok", True):
        print(
            f"metrics gate FAILED: collection overhead "
            f"{doc['metrics_overhead_pct']}% > {args.metrics_gate}%",
            file=sys.stderr,
        )
        failed = True
    if args.vm_floor is not None:
        for bench in doc["benchmarks"]:
            vm_speedup = bench.get("vm_speedup")
            if vm_speedup is not None and vm_speedup < args.vm_floor:
                print(
                    f"vm floor FAILED: {bench['name']} vm speedup "
                    f"{vm_speedup}x < {args.vm_floor}x",
                    file=sys.stderr,
                )
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
