"""Experiment runner: (application x runtime x environment) sweeps.

Each experiment in the paper is an average over many runs with
pseudo-random failure schedules (section 5.3: "each application is
executed 1000 times with pseudo-random seeds").  ``run_many`` executes
``reps`` independent runs — fresh machine, fresh program, seeded
failure model — and aggregates the section 5.2 metrics, including the
Figure 7/10 time breakdown (application / runtime overhead / wasted
work) computed against the runtime's own continuous-power useful time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.apps import APPS, AppSpec
from repro.core.run import (
    continuous_useful_time,
    nv_state,
    run_app,
    run_program,
)
from repro.hw.energy import Capacitor
from repro.hw.harvester import HarvestSource, RFHarvester
from repro.ir.transform import TransformOptions
from repro.kernel.power import NoFailures, UniformFailureModel


@dataclass
class Aggregate:
    """Mean metrics over one experiment cell."""

    app: str
    runtime: str
    label: str
    reps: int
    app_ms: float            # continuous-power useful time (the "App" bar)
    total_ms: float          # mean intermittent active time
    overhead_ms: float       # mean runtime-overhead time
    wasted_ms: float         # mean wasted work (incl. boot/restore)
    wall_ms: float           # mean wall clock (active + dark)
    failures: float          # mean power failures per run
    io_execs: float
    io_reexecs: float        # I/O + DMA re-executions per run
    io_skips: float          # skipped (avoided) operations per run
    energy_uj: float
    correct: int             # runs passing the consistency check
    completed: int
    memory: Dict[str, int] = field(default_factory=dict)
    text_proxy: int = 0

    @property
    def incorrect(self) -> int:
        return self.reps - self.correct


def run_many(
    spec: AppSpec,
    runtime: str,
    reps: int = 50,
    label: Optional[str] = None,
    build_kwargs: Optional[dict] = None,
    failure_low_ms: float = 5.0,
    failure_high_ms: float = 20.0,
    seed0: int = 0,
    env_seed: int = 1,
    transform_options: Optional[TransformOptions] = None,
    consistency: Optional[Callable[[dict], bool]] = None,
    harvest: Optional[HarvestSource] = None,
    capacitor: Optional[Capacitor] = None,
    env=None,
    nontermination_limit: int = 2000,
) -> Aggregate:
    """Run one experiment cell and aggregate its metrics.

    ``consistency`` receives the final NV snapshot of
    ``spec.result_vars`` and decides execution correctness; when
    omitted, completion counts as correct.  ``env`` switches to
    energy-coupled failures from a :mod:`repro.env` environment — a
    spec string, an :class:`~repro.env.EnergyEnvironment`, or a
    callable ``rep -> environment`` (Figure 13); ``harvest`` is the
    legacy capacitor-driven path; otherwise the paper's uniform
    soft-reset timer in ``[failure_low_ms, failure_high_ms]`` is used.
    """
    build_kwargs = build_kwargs or {}
    # registered apps go through the compilation cache: one compile for
    # the whole cell instead of one per repetition
    registered = APPS.get(spec.name) is spec

    def execute(failure_model, harvest_source, cap, trace_events=False):
        if registered:
            return run_app(
                spec.name,
                runtime=runtime,
                failure_model=failure_model,
                harvest=harvest_source,
                seed=env_seed,
                capacitor=cap,
                build_kwargs=build_kwargs,
                transform_options=transform_options,
                trace_events=trace_events,
                nontermination_limit=nontermination_limit,
                # each result is fully aggregated before the next rep
                reuse_machine=True,
            )
        return run_program(
            spec.build(**build_kwargs),
            runtime=runtime,
            failure_model=failure_model,
            harvest=harvest_source,
            seed=env_seed,
            capacitor=cap,
            transform_options=transform_options,
            trace_events=trace_events,
            nontermination_limit=nontermination_limit,
        )

    if registered:
        app_us = execute(NoFailures(), None, None).metrics.app_time_us
    else:
        app_us = continuous_useful_time(
            spec.build(**build_kwargs),
            runtime,
            seed=env_seed,
            transform_options=transform_options,
        )

    totals = {
        "active": 0.0, "overhead": 0.0, "wasted": 0.0, "wall": 0.0,
        "failures": 0.0, "io_execs": 0.0, "io_reexecs": 0.0,
        "io_skips": 0.0, "energy": 0.0,
    }
    correct = 0
    completed = 0
    memory: Dict[str, int] = {}
    text_proxy = 0

    for rep in range(reps):
        if env is not None:
            # energy-coupled mode: the environment IS the failure model
            harvest_source = None
            cap = None
            if callable(env):
                failure_model = env(rep)
            elif isinstance(env, str):
                from repro.env.spec import parse_env

                failure_model = parse_env(env)
            else:
                env.reset()
                failure_model = env
        elif (
            harvest_source := harvest(rep) if callable(harvest) else harvest
        ) is not None:
            failure_model = NoFailures()
            template = capacitor if capacitor is not None else Capacitor()
            # fresh buffer per run, starting at the turn-on threshold:
            # the device has just woken, not banked a full charge
            cap = Capacitor(
                capacitance_f=template.capacitance_f,
                v_max=template.v_max,
                v_on=template.v_on,
                v_off=template.v_off,
                voltage=template.v_on,
            )
        else:
            failure_model = UniformFailureModel(
                low_ms=failure_low_ms, high_ms=failure_high_ms, seed=seed0 + rep
            )
            cap = None
        result = execute(failure_model, harvest_source, cap)
        m = result.metrics
        totals["active"] += m.active_time_us
        totals["overhead"] += m.overhead_time_us
        totals["wasted"] += m.waste_against(app_us)
        totals["wall"] += m.total_time_us
        totals["failures"] += m.power_failures
        totals["io_execs"] += m.io_executions + m.dma_executions
        totals["io_reexecs"] += m.io_reexecutions + m.dma_reexecutions
        totals["io_skips"] += m.io_skips + m.dma_skips
        totals["energy"] += m.energy_uj
        if m.completed:
            completed += 1
            if consistency is None:
                correct += 1
            else:
                state = nv_state(result, spec.result_vars)
                if consistency(state):
                    correct += 1
        memory = m.memory_footprint
        text_proxy = m.text_proxy

    n = float(reps)
    return Aggregate(
        app=spec.name,
        runtime=runtime,
        label=label if label is not None else runtime,
        reps=reps,
        app_ms=app_us / 1000.0,
        total_ms=totals["active"] / n / 1000.0,
        overhead_ms=totals["overhead"] / n / 1000.0,
        wasted_ms=totals["wasted"] / n / 1000.0,
        wall_ms=totals["wall"] / n / 1000.0,
        failures=totals["failures"] / n,
        io_execs=totals["io_execs"] / n,
        io_reexecs=totals["io_reexecs"] / n,
        io_skips=totals["io_skips"] / n,
        energy_uj=totals["energy"] / n,
        correct=correct,
        completed=completed,
        memory=memory,
        text_proxy=text_proxy,
    )


class KneeRFHarvester(RFHarvester):
    """RF harvester with a rectifier efficiency knee.

    Powercast-class rectennas convert a smaller fraction of weak input
    signals; modelling that as ``eff(p) = eff_max * p / (p + knee)``
    steepens the harvested-power falloff with distance so the paper's
    52-64 inch sweep spans the sustains-the-load -> duty-cycles
    transition (Figure 13).
    """

    def __init__(self, distance_inch: float, knee_mw: float = 20.0, **kwargs) -> None:
        super().__init__(distance_inch, **kwargs)
        self.knee_mw = knee_mw

    def mean_power_mw(self) -> float:
        received = super().mean_power_mw() / self.efficiency
        return received * self.efficiency * received / (received + self.knee_mw)


def rf_distance_harvester(distance_inch: float, seed: int = 0) -> RFHarvester:
    """The calibrated Figure 13 harvesting link.

    Includes mild log-normal multipath fading: attempt-to-attempt
    variation is what lets a marginal energy budget sometimes complete
    and sometimes brown out, as on the real testbed.
    """
    import numpy as np

    return KneeRFHarvester(
        distance_inch,
        fading_std_db=2.0,
        fading_period_us=15_000.0,
        rng=np.random.default_rng(seed),
    )
