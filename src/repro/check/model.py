"""Data model of the differential fault-injection checker.

The checker compares intermittent runs against a continuous-power
oracle and reports *violations* of the paper's re-execution semantics
(section 3): a ``Single`` operation that ran twice, a ``Timely``
operation repeated inside its freshness window, an ``Always``
operation whose effect never happened, diverged NV results, broken DMA
privatization.  This module holds the static knowledge the verdicts
are judged against:

``SiteInfo`` / ``site_table``
    one record per I/O-bearing site of the *source* program — its
    declared semantic, freshness interval, whether it sits inside an
    ``IOBlock`` (scope precedence legalizes forced re-execution,
    section 3.3.1) and which producer sites can force it to re-execute
    (section 3.3.2);

``program_determinism``
    whether two runs of the program observe the same environment.  A
    value-returning peripheral call (sensor, camera) makes the final
    NV state environment-dependent, so only effect/consistency checks
    apply; without one, the oracle's NV state is the unique correct
    answer and any divergence is a bug;

``conditional_io``
    whether any I/O effect is control-dependent on data — then the
    oracle's effect *set* is not necessarily the intermittent run's,
    and the missing-effect check must stand down;

``Violation`` / ``RunVerdict``
    the structured findings, picklable (for the multiprocessing
    campaign) and JSON-friendly (for reports).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir import analysis as AN
from repro.ir import ast as A

#: violation kinds, in rough severity order
VIOLATION_KINDS = (
    "single_reexec",      # a Single effect happened more than once
    "timely_reexec",      # a Timely effect repeated inside its window
    "timely_stale",       # a commit consumed a Timely reading aged past
                          # its window across a dark period (no re-sample)
    "dma_privatization",  # DMA re-execution corrupted its own input
    "nv_divergence",      # final NV state differs from the oracle's
    "always_skip",        # an Always effect from the oracle is missing
    "io_missing",         # any other oracle effect is missing
    "nontermination",     # the schedule starved the run of progress
    "incomplete",         # the run ended without completing
)

#: a failure-injection schedule: absolute reset times, microseconds
Schedule = Tuple[float, ...]


@dataclass(frozen=True)
class SiteInfo:
    """Static facts about one I/O-bearing site."""

    site: str
    task: str
    kind: str                 # "io" | "dma" | "block"
    semantic: str             # annotation / static DMA classification
    func: str = ""
    interval_us: Optional[float] = None
    in_block: bool = False
    producers: Tuple[str, ...] = ()


def _dma_static_semantic(program: A.Program, dma: A.DMACopy) -> str:
    """Compile-time view of a DMA's run-time classification (4.3)."""
    if dma.exclude:
        return "Exclude"

    def is_nv(name: str) -> bool:
        return program.has_decl(name) and program.decl(name).storage == A.NV

    if is_nv(dma.dst.name):
        return "Single"
    if is_nv(dma.src.name):
        return "Private"
    return "Always"


def site_table(program: A.Program) -> Dict[str, SiteInfo]:
    """Map every I/O-bearing site id to its :class:`SiteInfo`.

    Works on the *source* program (sites are assigned by
    :func:`repro.ir.ast.assign_sites` at build time and are stable
    across the EaseIO transform, which rewrites around them).
    """
    table: Dict[str, SiteInfo] = {}
    for task in program.tasks:
        deps = AN.io_dependencies(task)

        def walk(stmts, in_block: bool, task_name: str) -> None:
            for stmt in stmts:
                if isinstance(stmt, A.IOCall):
                    ann = stmt.annotation
                    table[stmt.site] = SiteInfo(
                        site=stmt.site,
                        task=task_name,
                        kind="io",
                        semantic=ann.semantic.value,
                        func=stmt.func,
                        interval_us=ann.interval_us,
                        in_block=in_block,
                        producers=tuple(deps.producers.get(stmt.site, ())),
                    )
                elif isinstance(stmt, A.IOBlock):
                    table[stmt.site] = SiteInfo(
                        site=stmt.site,
                        task=task_name,
                        kind="block",
                        semantic=stmt.annotation.semantic.value,
                        interval_us=stmt.annotation.interval_us,
                        in_block=in_block,
                    )
                    walk(stmt.body, True, task_name)
                elif isinstance(stmt, A.DMACopy):
                    producer = deps.dma_related_io.get(stmt.site)
                    table[stmt.site] = SiteInfo(
                        site=stmt.site,
                        task=task_name,
                        kind="dma",
                        semantic=_dma_static_semantic(program, stmt),
                        in_block=in_block,
                        producers=(producer,) if producer else (),
                    )
                elif isinstance(stmt, (A.If, A.Loop)):
                    walk(list(stmt.children()), in_block, task_name)

        walk(list(task.body), False, task.name)
    return table


def program_determinism(program: A.Program) -> Tuple[bool, Tuple[str, ...]]:
    """Is the final NV state a pure function of the program?

    A peripheral call that *returns a value* (sensor sample, camera
    capture, timestamp) injects the environment into the computation;
    two runs then legitimately finish with different NV results and
    only consistency/effect checks are meaningful.  Accelerator calls
    (``lea.*``) compute on memory and stay deterministic.
    """
    reasons: List[str] = []
    for call in program.io_sites():
        if call.out is not None and not call.is_lea:
            reasons.append(f"{call.site} ({call.func}) returns a value")
    return (not reasons), tuple(reasons)


def conditional_io(program: A.Program) -> bool:
    """Does any branch make an I/O effect data-dependent?

    When true, the oracle's effect set is only one of the legal effect
    sets and the missing-effect check is disabled.
    """

    def has_io(stmts) -> bool:
        for stmt in stmts:
            if isinstance(stmt, (A.IOCall, A.IOBlock, A.DMACopy)):
                return True
            if has_io(list(stmt.children())):
                return True
        return False

    for task in program.tasks:
        for stmt in task.walk():
            if isinstance(stmt, A.If) and has_io(list(stmt.children())):
                return True
    return False


@dataclass(frozen=True)
class Violation:
    """One semantics violation found in one injected run."""

    kind: str                 # one of VIOLATION_KINDS
    site: Optional[str]       # offending site id (None for global checks)
    task: Optional[str]       # owning task, when known
    time_us: Optional[float]  # when the offending event happened
    schedule: Schedule        # the injected failure schedule
    detail: Dict[str, object] = field(default_factory=dict)
    #: filled in by the campaign after delta-debugging
    minimal_schedule: Optional[Schedule] = None

    def to_json(self) -> Dict[str, object]:
        data = asdict(self)
        data["schedule"] = list(self.schedule)
        if self.minimal_schedule is not None:
            data["minimal_schedule"] = list(self.minimal_schedule)
        data["detail"] = {k: _jsonable(v) for k, v in self.detail.items()}
        return data

    @staticmethod
    def from_json(data: Dict[str, object]) -> "Violation":
        """Rebuild a violation from its :meth:`to_json` form.

        Round-trip contract (pinned by the serve store tests): for any
        violation ``v``, ``Violation.from_json(v.to_json()).to_json()
        == v.to_json()`` — detail values were already coerced through
        :func:`_jsonable` on the way out, so they survive unchanged.
        """
        minimal = data.get("minimal_schedule")
        return Violation(
            kind=str(data["kind"]),
            site=data.get("site"),          # type: ignore[arg-type]
            task=data.get("task"),          # type: ignore[arg-type]
            time_us=data.get("time_us"),    # type: ignore[arg-type]
            schedule=tuple(data.get("schedule", ())),  # type: ignore[arg-type]
            detail=dict(data.get("detail", {})),       # type: ignore[arg-type]
            minimal_schedule=(
                tuple(minimal) if minimal is not None else None  # type: ignore[arg-type]
            ),
        )

    def describe(self) -> str:
        where = f" at {self.site}" if self.site else ""
        task = f" in {self.task}" if self.task else ""
        when = f" t={self.time_us / 1000.0:.3f}ms" if self.time_us else ""
        extras = " ".join(
            f"{k}={_jsonable(v)}" for k, v in sorted(self.detail.items())
        )
        return f"{self.kind}{where}{task}{when} {extras}".rstrip()


def _jsonable(value: object) -> object:
    """Coerce trace-detail values (numpy scalars, tuples) for JSON."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()  # type: ignore[union-attr]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


@dataclass(frozen=True)
class RunVerdict:
    """The checker's judgement of one injected run."""

    schedule: Schedule
    completed: bool
    power_failures: int
    violations: Tuple[Violation, ...] = ()
    counters: Dict[str, int] = field(default_factory=dict)
    check_level: str = "events"   # "events" | "counters"
    error: Optional[str] = None   # NonTermination message, if any

    @property
    def ok(self) -> bool:
        return not self.violations and self.error is None

    def to_json(self) -> Dict[str, object]:
        return {
            "schedule": list(self.schedule),
            "completed": self.completed,
            "power_failures": self.power_failures,
            "violations": [v.to_json() for v in self.violations],
            "counters": dict(self.counters),
            "check_level": self.check_level,
            "error": self.error,
        }

    @staticmethod
    def from_json(data: Dict[str, object]) -> "RunVerdict":
        """Rebuild a verdict from its :meth:`to_json` form.

        This is how the serve layer's content-addressed store turns a
        cached entry back into the object the campaign folds — the
        reconstruction must be lossless (``to_json`` of the result is
        byte-identical to the stored document).
        """
        return RunVerdict(
            schedule=tuple(data.get("schedule", ())),   # type: ignore[arg-type]
            completed=bool(data["completed"]),
            power_failures=int(data["power_failures"]),  # type: ignore[arg-type]
            violations=tuple(
                Violation.from_json(v)
                for v in data.get("violations", ())      # type: ignore[union-attr]
            ),
            counters=dict(data.get("counters", {})),     # type: ignore[arg-type]
            check_level=str(data.get("check_level", "events")),
            error=data.get("error"),                     # type: ignore[arg-type]
        )
