"""``repro.check`` — differential fault-injection correctness checker.

Turns the simulator into a correctness lab for re-execution semantics:
run an application once on continuous power (the *oracle*), then
replay it under systematically injected power failures and diff every
run against the oracle — NV results, I/O effect sets, and per-event
re-execution discipline (``Single`` never repeats, ``Timely`` never
repeats inside its freshness window, ``Always`` never goes missing).

Entry points:

>>> from repro.check import CampaignConfig, run_campaign
>>> report = run_campaign(CampaignConfig(app="uni_temp", runtime="easeio"))
>>> report.ok
True

or from the shell::

    python -m repro check uni_temp --runtime easeio --mode exhaustive
    python -m repro check fir --runtime alpaca --mode random --runs 200
"""

from repro.check.campaign import CampaignConfig, run_campaign
from repro.check.diff import DEFAULT_ATOMICITY_WINDOW_US, diff_run
from repro.check.inject import (
    exhaustive_schedules,
    probe_boundaries,
    random_schedules,
    run_schedule,
)
from repro.check.model import (
    RunVerdict,
    SiteInfo,
    VIOLATION_KINDS,
    Violation,
    conditional_io,
    program_determinism,
    site_table,
)
from repro.check.oracle import Oracle, build_oracle, effect_set
from repro.check.report import CampaignReport
from repro.check.shrink import ddmin

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "DEFAULT_ATOMICITY_WINDOW_US",
    "Oracle",
    "RunVerdict",
    "SiteInfo",
    "VIOLATION_KINDS",
    "Violation",
    "build_oracle",
    "conditional_io",
    "ddmin",
    "diff_run",
    "effect_set",
    "exhaustive_schedules",
    "probe_boundaries",
    "program_determinism",
    "random_schedules",
    "run_campaign",
    "run_schedule",
    "site_table",
]
