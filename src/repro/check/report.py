"""Campaign results: aggregation, JSON, and human-readable rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.check.model import RunVerdict, Schedule, Violation
from repro.obs.campaign import CampaignTelemetry

#: at most this many individual violations are carried in full reports
MAX_REPORTED_VIOLATIONS = 50


@dataclass
class CampaignReport:
    """Everything one checking campaign produced."""

    app: str
    runtime: str
    mode: str
    workers: int
    check_level: str
    n_runs: int
    n_failures_injected: int
    n_violating_runs: int
    by_kind: Dict[str, int]
    violations: List[Violation]          # capped sample, worst first
    total_violations: int
    minimal: Dict[str, Schedule]         # kind -> shrunken reproducer
    oracle_summary: Dict[str, object]
    elapsed_s: float
    notes: List[str] = field(default_factory=list)
    #: obs campaign telemetry block (runs/s over time, aggregated run
    #: counters, shrink evaluations, divergence rates by bug class)
    telemetry: Dict[str, object] = field(default_factory=dict)
    #: the full replayable campaign configuration (seed, workers,
    #: fastpath mode, semantics/lint versions...) — any report can be
    #: re-submitted verbatim via ``repro serve submit --from-report``
    config: Dict[str, object] = field(default_factory=dict)
    #: True when the campaign was interrupted: verdicts cover only the
    #: schedules checked before the interrupt, and a checkpoint (when
    #: configured) makes the remainder resumable
    partial: bool = False

    @property
    def ok(self) -> bool:
        return self.total_violations == 0 and not self.partial

    def to_json(self) -> Dict[str, object]:
        return {
            "app": self.app,
            "runtime": self.runtime,
            "mode": self.mode,
            "workers": self.workers,
            "check_level": self.check_level,
            "n_runs": self.n_runs,
            "n_failures_injected": self.n_failures_injected,
            "n_violating_runs": self.n_violating_runs,
            "ok": self.ok,
            "by_kind": dict(self.by_kind),
            "total_violations": self.total_violations,
            "violations": [v.to_json() for v in self.violations],
            "minimal_schedules": {
                kind: list(sched) for kind, sched in self.minimal.items()
            },
            "oracle": dict(self.oracle_summary),
            "elapsed_s": self.elapsed_s,
            "telemetry": dict(self.telemetry),
            "config": dict(self.config),
            "partial": self.partial,
            "notes": list(self.notes),
        }

    def render_text(self) -> str:
        lines: List[str] = []
        verdict = "PASS" if self.ok else (
            "PARTIAL (interrupted)" if self.partial else "FAIL"
        )
        lines.append(
            f"check {self.app} on {self.runtime} "
            f"[{self.mode}, {self.check_level}-level]: {verdict}"
        )
        o = self.oracle_summary
        lines.append(
            f"  oracle      : {o.get('duration_ms', 0.0):.3f} ms, "
            f"{o.get('io_execs', 0)} io + {o.get('dma_execs', 0)} dma effects, "
            f"{'deterministic' if o.get('deterministic') else 'environment-dependent'}"
        )
        rate = self.n_runs / self.elapsed_s if self.elapsed_s > 0 else 0.0
        lines.append(
            f"  campaign    : {self.n_runs} runs, "
            f"{self.n_failures_injected} failures injected, "
            f"{self.elapsed_s:.2f} s ({rate:.0f} runs/s, "
            f"workers={self.workers})"
        )
        if self.ok:
            lines.append("  violations  : none")
        else:
            lines.append(
                f"  violations  : {self.total_violations} "
                f"in {self.n_violating_runs}/{self.n_runs} runs"
            )
            for kind in sorted(self.by_kind, key=self.by_kind.get, reverse=True):
                lines.append(f"    {kind:18s} x{self.by_kind[kind]}")
            shown = _examples_by_kind(self.violations)
            for kind, example in shown.items():
                lines.append(f"  example [{kind}]:")
                lines.append(f"    {example.describe()}")
                sched = self.minimal.get(kind, example.schedule)
                pretty = ", ".join(f"{t / 1000.0:.3f}ms" for t in sched)
                tag = "minimal reproducer" if kind in self.minimal else "schedule"
                lines.append(f"    {tag}: reset at [{pretty}]")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _examples_by_kind(violations: List[Violation]) -> Dict[str, Violation]:
    out: Dict[str, Violation] = {}
    for v in violations:
        out.setdefault(v.kind, v)
    return out


def summarize(
    app: str,
    runtime: str,
    mode: str,
    workers: int,
    verdicts: List[RunVerdict],
    minimal: Dict[str, Schedule],
    oracle_summary: Dict[str, object],
    elapsed_s: float,
    notes: Optional[List[str]] = None,
    telemetry: Optional[CampaignTelemetry] = None,
    config: Optional[Dict[str, object]] = None,
    partial: bool = False,
) -> CampaignReport:
    """Fold per-run verdicts into one report."""
    all_violations: List[Violation] = []
    by_kind: Dict[str, int] = {}
    n_failures = 0
    violating_runs = 0
    check_level = "events"
    for verdict in verdicts:
        n_failures += verdict.power_failures
        if verdict.check_level == "counters":
            check_level = "counters"
        if verdict.violations:
            violating_runs += 1
        for v in verdict.violations:
            by_kind[v.kind] = by_kind.get(v.kind, 0) + 1
            all_violations.append(v)

    # keep a bounded, kind-diverse sample: first of each kind, then rest
    sample: List[Violation] = list(_examples_by_kind(all_violations).values())
    for v in all_violations:
        if len(sample) >= MAX_REPORTED_VIOLATIONS:
            break
        if v not in sample:
            sample.append(v)

    report_notes = list(notes or [])
    if not verdicts and not partial:
        report_notes.append(
            "campaign executed no runs — the PASS verdict is vacuous"
        )
    if len(all_violations) > len(sample):
        report_notes.append(
            f"violation list truncated to {len(sample)} of "
            f"{len(all_violations)} (counts in by_kind are complete)"
        )

    telemetry_json: Dict[str, object] = {}
    if telemetry is not None:
        telemetry_json = telemetry.to_json(
            by_kind=by_kind, n_runs=len(verdicts)
        )

    return CampaignReport(
        app=app,
        runtime=runtime,
        mode=mode,
        workers=workers,
        check_level=check_level,
        n_runs=len(verdicts),
        n_failures_injected=n_failures,
        n_violating_runs=violating_runs,
        by_kind=by_kind,
        violations=sample,
        total_violations=len(all_violations),
        minimal=minimal,
        oracle_summary=oracle_summary,
        elapsed_s=elapsed_s,
        notes=report_notes,
        telemetry=telemetry_json,
        config=dict(config or {}),
        partial=partial,
    )
