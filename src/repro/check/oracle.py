"""The continuous-power oracle.

A single run under :class:`~repro.kernel.power.NoFailures` defines
what the application *should* do: the final NV result state and the
canonical set of I/O effects (which logical I/O instances executed).
Every injected run is judged against this record (the differential
part of the checker).

An *effect* is one logical I/O instance: ``(kind, seq, site, loop)``
where ``seq`` is the committed task-instance number, ``site`` the
static call site and ``loop`` the loop-index vector — the same key the
runtimes use for re-execution detection.  Private DMA snapshot phases
are runtime plumbing, not application effects, and are excluded.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Optional, Tuple

from repro.apps import APPS
from repro.core.compile import build_app_program
from repro.core.run import nv_state, resolve_result_vars, run_app
from repro.hw import trace as T
from repro.hw.trace import Trace
from repro.kernel.power import NoFailures
from repro.check.model import (
    SiteInfo,
    conditional_io,
    program_determinism,
    site_table,
)

#: one logical I/O effect: (kind, task seq, site id, loop indices)
EffectKey = Tuple[str, object, str, object]


def effect_set(trace: Trace) -> FrozenSet[EffectKey]:
    """The logical I/O effects recorded in a trace.

    Re-executions collapse (the set ignores multiplicity — repeats are
    judged separately); Private-DMA snapshot phases are dropped.
    """
    out = set()
    for event in trace.events:
        if event.kind == T.IO_EXEC:
            out.add((
                "io",
                event.detail.get("seq"),
                str(event.detail.get("site")),
                event.detail.get("loop"),
            ))
        elif event.kind == T.DMA_EXEC:
            if event.detail.get("phase") == "private_snapshot":
                continue
            out.add((
                "dma",
                event.detail.get("seq"),
                str(event.detail.get("site")),
                event.detail.get("loop"),
            ))
    return frozenset(out)


@dataclass
class Oracle:
    """Everything an injected run is compared against.

    Picklable: campaign workers receive one copy each (via fork) and
    never mutate it.
    """

    app: str
    runtime: str
    env_seed: int
    build_kwargs: Dict[str, object]
    duration_us: float
    nv: Dict[str, object]
    effects: FrozenSet[EffectKey]
    n_io: int
    n_dma: int
    deterministic: bool
    nondet_reasons: Tuple[str, ...]
    conditional_io: bool
    sites: Dict[str, SiteInfo]
    result_vars: Tuple[str, ...] = ()
    transform_options: Optional[object] = None
    notes: Tuple[str, ...] = field(default_factory=tuple)


def consistency_checker(app: str) -> Optional[Callable[[dict], bool]]:
    """The app's own NV-consistency predicate, when it defines one.

    Apps whose results depend on what the environment happened to
    contain (camera, sensors) cannot be diffed bit-for-bit against the
    oracle; instead they export ``check_consistency(state) -> bool``
    asserting *internal* consistency of whatever was observed.
    """
    try:
        module = importlib.import_module(f"repro.apps.{app}")
    except ImportError:
        return None
    fn = getattr(module, "check_consistency", None)
    return fn if callable(fn) else None


def build_oracle(
    app: str,
    runtime: str,
    env_seed: int = 1,
    build_kwargs: Optional[Dict[str, object]] = None,
    transform_options: Optional[object] = None,
) -> Oracle:
    """Run ``app`` once on continuous power and record the reference."""
    kwargs = dict(build_kwargs or {})
    spec = APPS[app]
    program = build_app_program(app, kwargs)
    result_vars = resolve_result_vars(program, spec.result_vars)
    deterministic, reasons = program_determinism(program)

    result = run_app(
        app,
        runtime=runtime,
        failure_model=NoFailures(),
        seed=env_seed,
        build_kwargs=kwargs,
        transform_options=transform_options,
        reuse_machine=True,
    )
    if not result.completed:  # pragma: no cover - NoFailures always completes
        raise RuntimeError(
            f"oracle run of {app!r} on {runtime!r} did not complete"
        )
    trace: Trace = result.runtime.machine.trace  # type: ignore[attr-defined]
    effects = effect_set(trace)

    notes = []
    if not deterministic:
        if consistency_checker(app) is not None:
            notes.append(
                "environment-dependent result: NV state checked via the "
                "app's consistency predicate, not bit-for-bit"
            )
        else:
            notes.append(
                "environment-dependent result with no consistency "
                "predicate: NV-state checks disabled (effect and "
                "re-execution checks still apply)"
            )
    has_conditional = conditional_io(program)
    if has_conditional:
        notes.append(
            "data-dependent I/O under branches: missing-effect check disabled"
        )

    return Oracle(
        app=app,
        runtime=runtime,
        env_seed=env_seed,
        build_kwargs=kwargs,
        duration_us=result.metrics.total_time_us,
        nv=nv_state(result, result_vars),
        effects=effects,
        n_io=trace.count(T.IO_EXEC),
        n_dma=trace.count(T.DMA_EXEC),
        deterministic=deterministic,
        nondet_reasons=reasons,
        conditional_io=has_conditional,
        sites=site_table(program),
        result_vars=result_vars,
        transform_options=transform_options,
        notes=tuple(notes),
    )
