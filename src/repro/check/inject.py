"""Failure-schedule generation and injected execution.

Two campaign modes (mirroring the two halves of the paper's
correctness evaluation, section 5.4):

*exhaustive*
    a probe run under continuous power records every step boundary —
    the instants at which the executor's all-or-nothing step semantics
    can actually distinguish failure points.  One injected run per
    boundary, with a :class:`~repro.kernel.power.ScriptedFailures`
    reset exactly there, covers every single-failure behaviour of the
    program (a failure *inside* a step annihilates the step, which is
    observationally the failure at its start, modulo the clock).

*random*
    seeded multi-failure schedules — ``k`` resets uniformly drawn over
    a horizon stretched past the oracle's duration (failures extend
    runs, so later resets must be able to land in overtime).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.run import run_app
from repro.env.spec import parse_env
from repro.errors import NonTermination
from repro.kernel.executor import RunResult
from repro.kernel.power import ScriptedFailures
from repro.check.model import Schedule


def probe_boundaries(
    app: str,
    runtime: str,
    env_seed: int = 1,
    build_kwargs: Optional[Dict[str, object]] = None,
    transform_options: Optional[object] = None,
) -> List[float]:
    """Step-boundary times of a failure-free run (injection points).

    Returned times are the start instants of every runtime-yielded
    step; a reset scheduled at such a time truncates exactly that step
    to nothing.  The initial boot window is not a candidate (failing
    it only delays the start).
    """
    times: List[float] = []

    def observe(now_us: float, step) -> None:
        times.append(now_us)

    run_app(
        app,
        runtime=runtime,
        seed=env_seed,
        build_kwargs=build_kwargs,
        transform_options=transform_options,
        trace_events=False,
        step_observer=observe,
        reuse_machine=True,
    )
    return sorted(set(times))


def exhaustive_schedules(
    boundaries: List[float], limit: Optional[int] = None
) -> List[Schedule]:
    """One single-failure schedule per boundary, optionally subsampled.

    With ``limit``, boundaries are thinned evenly across the run (not
    truncated from the front — late failures exercise commit paths
    early ones cannot).
    """
    if limit is not None and 0 < limit < len(boundaries):
        idx = np.linspace(0, len(boundaries) - 1, num=limit)
        boundaries = [boundaries[int(round(i))] for i in idx]
        boundaries = sorted(set(boundaries))
    return [(t,) for t in boundaries]


def random_schedules(
    duration_us: float,
    runs: int,
    failures_per_run: int,
    seed: int = 0,
) -> List[Schedule]:
    """``runs`` seeded schedules of ``failures_per_run`` resets each."""
    rng = np.random.default_rng(seed)
    horizon = duration_us * (1.0 + 0.5 * max(1, failures_per_run))
    out: List[Schedule] = []
    for _ in range(max(0, runs)):
        times = rng.uniform(0.0, horizon, size=max(1, failures_per_run))
        out.append(tuple(float(t) for t in np.sort(times)))
    return out


def run_schedule(
    app: str,
    runtime: str,
    schedule: Schedule,
    env_seed: int = 1,
    build_kwargs: Optional[Dict[str, object]] = None,
    transform_options: Optional[object] = None,
    trace_events: bool = True,
    nontermination_limit: int = 2000,
    env: Optional[str] = None,
):
    """Execute one injected run.

    With ``env``, the scripted schedule is composed *into* a parsed
    :class:`~repro.env.environment.EnergyEnvironment` (a fresh instance
    per run — environments are stateful): the run sees the injected
    resets *plus* whatever brown-outs its own draw causes under the
    environment's source.

    Returns ``(result, None)`` on (possibly incomplete) execution or
    ``(None, message)`` when the schedule starved the run into
    :class:`~repro.errors.NonTermination`.
    """
    timer = ScriptedFailures(list(schedule))
    failure_model = timer if env is None else parse_env(env, timer=timer)
    try:
        result: RunResult = run_app(
            app,
            runtime=runtime,
            failure_model=failure_model,
            seed=env_seed,
            build_kwargs=build_kwargs,
            transform_options=transform_options,
            trace_events=trace_events,
            nontermination_limit=nontermination_limit,
            # safe: the verdict is derived (and NV state copied) before
            # the next schedule resets the pooled machine
            reuse_machine=True,
        )
    except NonTermination as exc:
        return None, str(exc)
    return result, None
