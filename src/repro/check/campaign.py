"""Campaign runner: fan the injected runs out and fold verdicts in.

Each worker process receives the shared context (config + oracle +
site table) once through the pool initializer, then checks schedules
independently — a run is built, executed, and diffed entirely inside
the worker, so the only traffic is the schedule in and the (small)
verdict out.  ``workers=1`` runs inline, which keeps single-process
debugging (pdb, coverage) trivial and is what the test suite uses.

After the fan-out, the first failing schedule of each violation kind
is delta-debugged (:mod:`repro.check.shrink`) to a minimal reproducer
— for exhaustive mode that is the single injected reset itself; for
random multi-failure schedules it prunes the noise resets.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.check import inject
from repro.errors import ReproError
from repro.core.compile import compile_app
from repro.check.diff import DEFAULT_ATOMICITY_WINDOW_US, diff_run
from repro.check.model import RunVerdict, Schedule, Violation
from repro.check.oracle import Oracle, build_oracle
from repro.check.report import CampaignReport, summarize
from repro.check.shrink import ddmin
from repro.obs.campaign import CampaignTelemetry


@dataclass
class CampaignConfig:
    """All knobs of one checking campaign."""

    app: str
    runtime: str = "easeio"
    mode: str = "exhaustive"            # "exhaustive" | "random"
    workers: int = 1
    env_seed: int = 1
    seed: int = 0                       # random-mode schedule seed
    runs: int = 100                     # random mode: number of schedules
    failures_per_run: int = 3           # random mode: resets per schedule
    limit: Optional[int] = None         # exhaustive mode: boundary cap
    trace_events: bool = True
    atomicity_window_us: float = DEFAULT_ATOMICITY_WINDOW_US
    nontermination_limit: int = 2000
    shrink: bool = True
    build_kwargs: Dict[str, object] = field(default_factory=dict)
    transform_options: Optional[object] = None
    #: stream per-schedule progress lines to stderr (CLI campaigns)
    progress: bool = False


# shared per-process context: (config, oracle); populated by the pool
# initializer (or directly for inline runs)
_CTX: Optional[tuple] = None


def _init_worker(ctx: tuple) -> None:
    global _CTX
    _CTX = ctx
    # warm this worker's compilation cache once, so the first schedule
    # it draws doesn't pay the compile (forked workers inherit the
    # parent's warm cache; spawned ones start cold without this)
    cfg = ctx[0]
    try:
        compile_app(
            cfg.app,
            cfg.runtime,
            build_kwargs=cfg.build_kwargs,
            transform_options=cfg.transform_options,
        )
    except Exception:  # pragma: no cover - campaign surfaces it later
        pass


def _check_schedule(schedule: Schedule) -> RunVerdict:
    """Run + judge one schedule (executes inside a worker)."""
    assert _CTX is not None, "worker context not initialized"
    cfg, oracle = _CTX
    result, error = inject.run_schedule(
        cfg.app,
        cfg.runtime,
        schedule,
        env_seed=cfg.env_seed,
        build_kwargs=cfg.build_kwargs,
        transform_options=cfg.transform_options,
        trace_events=cfg.trace_events,
        nontermination_limit=cfg.nontermination_limit,
    )
    if result is None:
        return RunVerdict(
            schedule=schedule,
            completed=False,
            power_failures=len(schedule),
            violations=(Violation(
                kind="nontermination",
                site=None,
                task=None,
                time_us=None,
                schedule=schedule,
                detail={"error": error},
            ),),
            check_level="events" if cfg.trace_events else "counters",
            error=error,
        )
    return diff_run(
        result, oracle, schedule,
        atomicity_window_us=cfg.atomicity_window_us,
    )


def _check_indexed(item: Tuple[int, Schedule]) -> Tuple[int, RunVerdict]:
    """Pool task: judge one schedule, carrying its index back."""
    idx, schedule = item
    return idx, _check_schedule(schedule)


def resolve_workers(workers: Optional[int]) -> int:
    """``None``/0 -> all cores; explicit values pass through."""
    if not workers:
        return max(1, multiprocessing.cpu_count())
    return max(1, workers)


def build_schedules(cfg: CampaignConfig, oracle: Oracle) -> List[Schedule]:
    """The campaign's schedule list for the configured mode."""
    if cfg.mode == "exhaustive":
        boundaries = inject.probe_boundaries(
            cfg.app,
            cfg.runtime,
            env_seed=cfg.env_seed,
            build_kwargs=cfg.build_kwargs,
            transform_options=cfg.transform_options,
        )
        return inject.exhaustive_schedules(boundaries, limit=cfg.limit)
    if cfg.mode == "random":
        return inject.random_schedules(
            oracle.duration_us, cfg.runs, cfg.failures_per_run, seed=cfg.seed
        )
    raise ValueError(f"unknown campaign mode {cfg.mode!r}")


def _shrink_reproducers(
    cfg: CampaignConfig,
    verdicts: List[RunVerdict],
    telemetry: Optional[CampaignTelemetry] = None,
) -> Dict[str, Schedule]:
    """Minimal failing schedule per violation kind (first occurrence)."""
    minimal: Dict[str, Schedule] = {}
    for verdict in verdicts:
        for violation in verdict.violations:
            if violation.kind in minimal or not violation.schedule:
                continue
            kind = violation.kind
            if len(violation.schedule) == 1:
                minimal[kind] = violation.schedule
                continue

            def reproduces(candidate: Schedule, _kind: str = kind) -> bool:
                if telemetry is not None:
                    telemetry.note_shrink_eval()
                v = _check_schedule(candidate)
                return any(x.kind == _kind for x in v.violations)

            minimal[kind] = ddmin(violation.schedule, reproduces)
    return minimal


def run_campaign(cfg: CampaignConfig) -> CampaignReport:
    """Execute one full checking campaign and fold up the report."""
    oracle = build_oracle(
        cfg.app,
        cfg.runtime,
        env_seed=cfg.env_seed,
        build_kwargs=cfg.build_kwargs,
        transform_options=cfg.transform_options,
    )
    schedules = build_schedules(cfg, oracle)
    notes: List[str] = list(oracle.notes)
    if cfg.mode == "exhaustive" and cfg.limit:
        notes.append(
            f"exhaustive boundaries thinned to {len(schedules)} "
            f"(--limit {cfg.limit}); coverage is sampled, not complete"
        )
    if not cfg.trace_events:
        notes.append(
            "counters-only mode (--no-events): per-event and missing-effect "
            "checks are disabled; NV-state checks and the conservative "
            "counter-level Single-reexecution screen still apply"
        )

    ctx = (cfg, oracle)
    _init_worker(ctx)  # parent also needs the context (shrinking)
    total = len(schedules)
    telemetry = CampaignTelemetry(
        f"check {cfg.app}/{cfg.runtime}",
        total,
        every=25,
        progress=cfg.progress,
    )

    if cfg.workers > 1 and total > 1:
        # verdicts stream back as workers finish (imap_unordered), but
        # are re-ordered by schedule index before shrinking: the
        # minimal-reproducer pass picks the *first* failing schedule
        # per violation kind, which must not depend on worker timing
        slots: List[Optional[RunVerdict]] = [None] * total
        with multiprocessing.Pool(
            processes=cfg.workers,
            initializer=_init_worker,
            initargs=(ctx,),
        ) as pool:
            chunk = max(1, total // (cfg.workers * 4))
            for idx, verdict in pool.imap_unordered(
                _check_indexed, list(enumerate(schedules)), chunksize=chunk
            ):
                slots[idx] = verdict
                telemetry.tick(verdict.counters)
        missing = [i for i, v in enumerate(slots) if v is None]
        if missing:
            # a silently-dropped slot would make the report depend on
            # worker count: refuse to summarize partial results
            raise ReproError(
                f"campaign lost {len(missing)} of {total} schedule "
                f"verdicts (indices {missing[:5]}...); refusing to "
                "report on partial results"
            )
        verdicts = list(slots)
    else:
        verdicts = []
        for schedule in schedules:
            verdict = _check_schedule(schedule)
            verdicts.append(verdict)
            telemetry.tick(verdict.counters)

    minimal = (
        _shrink_reproducers(cfg, verdicts, telemetry) if cfg.shrink else {}
    )
    if minimal:
        verdicts = [_attach_minimal(v, minimal) for v in verdicts]

    oracle_summary = {
        "duration_ms": oracle.duration_us / 1000.0,
        "io_execs": oracle.n_io,
        "dma_execs": oracle.n_dma,
        "effects": len(oracle.effects),
        "deterministic": oracle.deterministic,
        "conditional_io": oracle.conditional_io,
        "env_seed": oracle.env_seed,
        "result_vars": list(oracle.result_vars),
    }
    return summarize(
        app=cfg.app,
        runtime=cfg.runtime,
        mode=cfg.mode,
        workers=cfg.workers,
        verdicts=verdicts,
        minimal=minimal,
        oracle_summary=oracle_summary,
        elapsed_s=telemetry.elapsed_s,
        notes=notes,
        telemetry=telemetry,
    )


def _attach_minimal(
    verdict: RunVerdict, minimal: Dict[str, Schedule]
) -> RunVerdict:
    if not verdict.violations:
        return verdict
    patched = tuple(
        replace(v, minimal_schedule=minimal.get(v.kind))
        if v.minimal_schedule is None and v.kind in minimal
        else v
        for v in verdict.violations
    )
    return replace(verdict, violations=patched)
