"""Campaign runner: fan the injected runs out and fold verdicts in.

The fan-out itself runs on the serve layer's
:class:`~repro.serve.scheduler.BatchScheduler`: each worker process
receives the shared context (config + oracle + site table) once
through the pool initializer, then checks schedules independently — a
run is built, executed, and diffed entirely inside the worker, so the
only traffic is the schedule in and the (small, JSON-encoded) verdict
out.  ``workers=1`` runs inline, which keeps single-process debugging
(pdb, coverage) trivial and is what the test suite uses.  With
``store_dir`` set, per-schedule verdicts are content-addressed
(:func:`check_unit_key`) and cache hits short-circuit simulation; with
``checkpoint`` set, an interrupted campaign re-run under the same
config resumes exactly where it died.

After the fan-out, the first failing schedule of each violation kind
is delta-debugged (:mod:`repro.check.shrink`) to a minimal reproducer
— for exhaustive mode that is the single injected reset itself; for
random multi-failure schedules it prunes the noise resets.
"""

from __future__ import annotations

import multiprocessing
import threading
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro import fastpath
from repro.check import inject
from repro.env.spec import describe_env
from repro.errors import CampaignInterrupted, ReproError
from repro.core.compile import compile_app, _options_key
from repro.check.diff import DEFAULT_ATOMICITY_WINDOW_US, diff_run
from repro.check.model import RunVerdict, Schedule, Violation
from repro.check.oracle import Oracle, build_oracle
from repro.check.report import CampaignReport, summarize
from repro.check.shrink import ddmin
from repro.ir.lint import LINT_VERSION
from repro.ir.semantics import SEMANTICS_VERSION
from repro.obs.campaign import CampaignTelemetry
from repro.serve.scheduler import BatchScheduler, WorkUnit
from repro.serve.store import ResultStore, campaign_digest, program_digest, unit_key


@dataclass
class CampaignConfig:
    """All knobs of one checking campaign."""

    app: str
    runtime: str = "easeio"
    mode: str = "exhaustive"            # "exhaustive" | "random"
    workers: int = 1
    env_seed: int = 1
    seed: int = 0                       # random-mode schedule seed
    runs: int = 100                     # random mode: number of schedules
    failures_per_run: int = 3           # random mode: resets per schedule
    limit: Optional[int] = None         # exhaustive mode: boundary cap
    #: energy-environment spec (``repro.env.parse_env`` grammar) the
    #: injected runs execute under; None keeps the ideal supply.  The
    #: oracle stays continuous-power either way — the environment is
    #: part of the *adversary*, not of the program's semantics.
    env: Optional[str] = None
    trace_events: bool = True
    atomicity_window_us: float = DEFAULT_ATOMICITY_WINDOW_US
    nontermination_limit: int = 2000
    shrink: bool = True
    build_kwargs: Dict[str, object] = field(default_factory=dict)
    transform_options: Optional[object] = None
    #: stream per-schedule progress lines to stderr (CLI campaigns)
    progress: bool = False
    #: content-addressed result store directory (None: no store) —
    #: per-schedule verdicts are cached and re-served on byte-identical
    #: (program, runtime, plan, fastpath, semantics-version) keys
    store_dir: Optional[str] = None
    #: physical store layout: "fs" | "sqlite" | None (sniff what's on
    #: disk, else honour REPRO_STORE_BACKEND, else "fs")
    store_backend: Optional[str] = None
    #: checkpoint journal path (None: no checkpoint) — an interrupted
    #: campaign re-run with the same config resumes where it died
    checkpoint: Optional[str] = None


# shared per-process context: (config, oracle); populated by the pool
# initializer (or directly for inline runs)
_CTX: Optional[tuple] = None


def _init_worker(ctx: tuple) -> None:
    global _CTX
    _CTX = ctx
    # warm this worker's compilation cache once, so the first schedule
    # it draws doesn't pay the compile (forked workers inherit the
    # parent's warm cache; spawned ones start cold without this)
    cfg = ctx[0]
    try:
        compile_app(
            cfg.app,
            cfg.runtime,
            build_kwargs=cfg.build_kwargs,
            transform_options=cfg.transform_options,
        )
    except Exception:  # pragma: no cover - campaign surfaces it later
        pass


def _check_schedule(schedule: Schedule) -> RunVerdict:
    """Run + judge one schedule (executes inside a worker)."""
    assert _CTX is not None, "worker context not initialized"
    cfg, oracle = _CTX
    result, error = inject.run_schedule(
        cfg.app,
        cfg.runtime,
        schedule,
        env_seed=cfg.env_seed,
        build_kwargs=cfg.build_kwargs,
        transform_options=cfg.transform_options,
        trace_events=cfg.trace_events,
        nontermination_limit=cfg.nontermination_limit,
        env=cfg.env,
    )
    if result is None:
        return RunVerdict(
            schedule=schedule,
            completed=False,
            power_failures=len(schedule),
            violations=(Violation(
                kind="nontermination",
                site=None,
                task=None,
                time_us=None,
                schedule=schedule,
                detail={"error": error},
            ),),
            check_level="events" if cfg.trace_events else "counters",
            error=error,
        )
    return diff_run(
        result, oracle, schedule,
        atomicity_window_us=cfg.atomicity_window_us,
    )


def _encode_verdict(verdict: RunVerdict) -> Dict[str, object]:
    """JSON-safe wire/store form of a verdict (runs inside workers)."""
    return verdict.to_json()


def _decode_verdict(doc: Dict[str, object]) -> RunVerdict:
    return RunVerdict.from_json(doc)


def _verdict_counters(verdict: RunVerdict) -> Dict[str, int]:
    """Telemetry counters for one verdict: trace counts + violations.

    The ``violations.<kind>`` entries land in the telemetry registry
    as ``run.violations.<kind>`` — that is what the obs series store
    reads to compute divergence-by-class per rev, so it must come from
    the verdicts themselves (identical for a fresh, a checkpointed,
    and a cache-served verdict).
    """
    counters = dict(verdict.counters)
    for violation in verdict.violations:
        key = "violations." + violation.kind
        counters[key] = counters.get(key, 0) + 1
    return counters


def resolve_workers(workers: Optional[int]) -> int:
    """``None``/0 -> all cores; explicit values pass through."""
    if not workers:
        return max(1, multiprocessing.cpu_count())
    return max(1, workers)


def describe_config(cfg: CampaignConfig) -> Dict[str, object]:
    """The campaign's full replayable configuration (report block).

    Embedded in every report so any report can be re-submitted
    verbatim (``repro serve submit --from-report``); also records the
    ambient fastpath mode and the semantics/lint versions the verdicts
    were computed under.
    """
    return {
        "kind": "check",
        "app": cfg.app,
        "runtime": cfg.runtime,
        "mode": cfg.mode,
        "workers": cfg.workers,
        "env_seed": cfg.env_seed,
        "seed": cfg.seed,
        "runs": cfg.runs,
        "failures_per_run": cfg.failures_per_run,
        "limit": cfg.limit,
        "env": cfg.env,
        "env_descriptor": describe_env(cfg.env),
        "trace_events": cfg.trace_events,
        "atomicity_window_us": cfg.atomicity_window_us,
        "nontermination_limit": cfg.nontermination_limit,
        "shrink": cfg.shrink,
        "build_kwargs": dict(cfg.build_kwargs),
        "transform_options": (
            [list(pair) for pair in _options_key(cfg.transform_options)]
            if cfg.transform_options is not None else None
        ),
        "fastpath": fastpath.enabled(),
        "semantics_version": SEMANTICS_VERSION,
        "lint_version": LINT_VERSION,
    }


def _campaign_identity(cfg: CampaignConfig) -> Dict[str, object]:
    """Everything the campaign's *work-unit set* depends on.

    ``workers``, ``shrink`` and ``progress`` are deliberately absent: a
    checkpoint written with 8 workers must resume under 1, and the
    shrink pass runs after (and independently of) the fan-out.
    """
    return {
        "program": program_digest(cfg.app, cfg.build_kwargs),
        "runtime": cfg.runtime,
        "mode": cfg.mode,
        "env_seed": cfg.env_seed,
        "seed": cfg.seed,
        "runs": cfg.runs,
        "failures_per_run": cfg.failures_per_run,
        "limit": cfg.limit,
        # content descriptor, not the raw spec string: two spellings of
        # the same environment (or a moved trace file) key identically,
        # while an *edited* trace file changes the identity
        "env": describe_env(cfg.env),
        "trace_events": cfg.trace_events,
        "atomicity_window_us": cfg.atomicity_window_us,
        "nontermination_limit": cfg.nontermination_limit,
        "options": list(_options_key(cfg.transform_options)),
    }


def check_campaign_digest(cfg: CampaignConfig) -> str:
    """Checkpoint identity of one checking campaign."""
    return campaign_digest("check", **_campaign_identity(cfg))


def check_unit_key(cfg: CampaignConfig, schedule: Schedule) -> str:
    """Store key of one injected run (the campaign's unit of work)."""
    return unit_key(
        "check-unit",
        program=program_digest(cfg.app, cfg.build_kwargs),
        runtime=cfg.runtime,
        schedule=list(schedule),
        env_seed=cfg.env_seed,
        env=describe_env(cfg.env),
        trace_events=cfg.trace_events,
        atomicity_window_us=cfg.atomicity_window_us,
        nontermination_limit=cfg.nontermination_limit,
        options=list(_options_key(cfg.transform_options)),
    )


def build_schedules(cfg: CampaignConfig, oracle: Oracle) -> List[Schedule]:
    """The campaign's schedule list for the configured mode."""
    if cfg.mode == "exhaustive":
        boundaries = inject.probe_boundaries(
            cfg.app,
            cfg.runtime,
            env_seed=cfg.env_seed,
            build_kwargs=cfg.build_kwargs,
            transform_options=cfg.transform_options,
        )
        return inject.exhaustive_schedules(boundaries, limit=cfg.limit)
    if cfg.mode == "random":
        return inject.random_schedules(
            oracle.duration_us, cfg.runs, cfg.failures_per_run, seed=cfg.seed
        )
    raise ValueError(f"unknown campaign mode {cfg.mode!r}")


def _shrink_reproducers(
    cfg: CampaignConfig,
    verdicts: List[RunVerdict],
    telemetry: Optional[CampaignTelemetry] = None,
) -> Dict[str, Schedule]:
    """Minimal failing schedule per violation kind (first occurrence)."""
    minimal: Dict[str, Schedule] = {}
    for verdict in verdicts:
        for violation in verdict.violations:
            if violation.kind in minimal or not violation.schedule:
                continue
            kind = violation.kind
            if len(violation.schedule) == 1:
                minimal[kind] = violation.schedule
                continue

            def reproduces(candidate: Schedule, _kind: str = kind) -> bool:
                if telemetry is not None:
                    telemetry.note_shrink_eval()
                v = _check_schedule(candidate)
                return any(x.kind == _kind for x in v.violations)

            minimal[kind] = ddmin(violation.schedule, reproduces)
    return minimal


def run_campaign(
    cfg: CampaignConfig,
    cancel: Optional[threading.Event] = None,
    telemetry: Optional[CampaignTelemetry] = None,
    series=None,
    events=None,
    fleet=None,
) -> CampaignReport:
    """Execute one full checking campaign and fold up the report.

    ``cancel`` (job layer) and SIGINT/SIGTERM (CLI) both stop the
    campaign gracefully: in-flight work drains, the checkpoint is
    flushed, and the raised :class:`~repro.errors.CampaignInterrupted`
    carries a partial, resumable report in ``.report``.  ``telemetry``
    lets a caller watch live progress; by default the campaign makes
    its own.
    """
    oracle = build_oracle(
        cfg.app,
        cfg.runtime,
        env_seed=cfg.env_seed,
        build_kwargs=cfg.build_kwargs,
        transform_options=cfg.transform_options,
    )
    schedules = build_schedules(cfg, oracle)
    notes: List[str] = list(oracle.notes)
    if cfg.mode == "exhaustive" and cfg.limit:
        notes.append(
            f"exhaustive boundaries thinned to {len(schedules)} "
            f"(--limit {cfg.limit}); coverage is sampled, not complete"
        )
    if not cfg.trace_events:
        notes.append(
            "counters-only mode (--no-events): per-event and missing-effect "
            "checks are disabled; NV-state checks and the conservative "
            "counter-level Single-reexecution screen still apply"
        )
    if cfg.env is not None:
        notes.append(
            f"energy environment {cfg.env!r}: injected resets compose with "
            "emergent brown-outs; the oracle remains continuous-power"
        )

    ctx = (cfg, oracle)
    _init_worker(ctx)  # parent also needs the context (shrinking)
    total = len(schedules)
    if telemetry is None:
        telemetry = CampaignTelemetry(
            f"check {cfg.app}/{cfg.runtime}",
            total,
            every=25,
            progress=cfg.progress,
        )

    store = (
        ResultStore(cfg.store_dir, backend=cfg.store_backend)
        if cfg.store_dir else None
    )
    # verdicts come back re-slotted by schedule index whatever the
    # worker timing: the minimal-reproducer pass picks the *first*
    # failing schedule per violation kind, which must be deterministic
    scheduler = BatchScheduler(
        workers=cfg.workers,
        store=store,
        checkpoint_path=cfg.checkpoint,
        campaign=check_campaign_digest(cfg),
        telemetry=telemetry,
        cancel=cancel,
        series=series,
        events=events,
        fleet=fleet,
    )
    units = [
        WorkUnit(
            index=i,
            payload=schedule,
            key=check_unit_key(cfg, schedule) if store is not None else "",
        )
        for i, schedule in enumerate(schedules)
    ]

    oracle_summary = {
        "duration_ms": oracle.duration_us / 1000.0,
        "io_execs": oracle.n_io,
        "dma_execs": oracle.n_dma,
        "effects": len(oracle.effects),
        "deterministic": oracle.deterministic,
        "conditional_io": oracle.conditional_io,
        "env_seed": oracle.env_seed,
        "result_vars": list(oracle.result_vars),
    }
    config = describe_config(cfg)

    try:
        verdicts = scheduler.run(
            units,
            task=_check_schedule,
            initializer=_init_worker,
            initargs=(ctx,),
            encode=_encode_verdict,
            decode=_decode_verdict,
            counters=_verdict_counters,
        )
    except CampaignInterrupted as exc:
        done = [exc.results[i] for i in sorted(exc.results)]
        exc.report = summarize(
            app=cfg.app,
            runtime=cfg.runtime,
            mode=cfg.mode,
            workers=cfg.workers,
            verdicts=done,
            minimal={},
            oracle_summary=oracle_summary,
            elapsed_s=telemetry.elapsed_s,
            notes=notes + [
                f"interrupted: {exc.done}/{exc.total} schedules checked"
                + (
                    f"; resumable via checkpoint {cfg.checkpoint}"
                    if cfg.checkpoint else ""
                )
            ],
            telemetry=telemetry,
            config=config,
            partial=True,
        )
        raise

    minimal = (
        _shrink_reproducers(cfg, verdicts, telemetry) if cfg.shrink else {}
    )
    if minimal:
        verdicts = [_attach_minimal(v, minimal) for v in verdicts]

    return summarize(
        app=cfg.app,
        runtime=cfg.runtime,
        mode=cfg.mode,
        workers=cfg.workers,
        verdicts=verdicts,
        minimal=minimal,
        oracle_summary=oracle_summary,
        elapsed_s=telemetry.elapsed_s,
        notes=notes,
        telemetry=telemetry,
        config=config,
    )


def _attach_minimal(
    verdict: RunVerdict, minimal: Dict[str, Schedule]
) -> RunVerdict:
    if not verdict.violations:
        return verdict
    patched = tuple(
        replace(v, minimal_schedule=minimal.get(v.kind))
        if v.minimal_schedule is None and v.kind in minimal
        else v
        for v in verdict.violations
    )
    return replace(verdict, violations=patched)
