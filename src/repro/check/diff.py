"""Differential verdicts: one injected run vs. the oracle.

The checks, in order:

1. **Re-execution discipline** (event-level): every ``io_exec`` marked
   ``repeat=True`` is a logical I/O instance running again.  For a
   ``Single`` site that is a violation outright; for a ``Timely`` site
   it is a violation when the previous execution is still fresh
   (younger than the annotated interval).  Exemptions, straight from
   the paper's own semantics:

   * *scope precedence* (3.3.1) — sites inside an ``IOBlock`` may be
     forced to re-execute by the block;
   * *dependence precedence* (3.3.2) — sites with producers re-execute
     when a producer did;
   * *atomicity window* — the guarded implementation cannot set the
     completion flag in the same instant as the I/O effect (the flag
     write is its own step, section 4.2).  A failure landing within
     ``atomicity_window_us`` after an execution makes one duplicate
     unavoidable for *any* flag-based implementation; such repeats are
     benign.  The window (default 50µs) is far below any reboot+retry
     path, so genuine unguarded re-execution is never excused.

   DMA repeats are *not* judged per-event: the runtime legitimately
   replays transfers whose producers re-ran, and a replayed idempotent
   copy is harmless — real damage (the WAR hazard of Figure 3) shows
   up as NV corruption, which the state checks below catch.

2. **Freshness at commit** (event-level): the dual of Timely
   re-execution — a task commit must not consume a ``Timely`` reading
   aged past its window across a real dark period without re-sampling
   (:func:`_stale_timely_checks`; fires only under energy environments,
   where outages physically age data).

3. **Effect completeness**: every oracle effect must appear in the run
   (a missing ``Always`` effect is the paper's "skipped I/O" failure
   mode).  Disabled when branches make I/O data-dependent.

4. **NV state**: for deterministic programs, bit-for-bit equality with
   the oracle; otherwise the app's own ``check_consistency`` predicate
   judges internal consistency.  A failure here with an unforced
   Private/Single DMA repeat in the trace is classified as a
   privatization break (the DMA re-read its own output), else as
   generic divergence.

When the run was executed with ``trace_events=False`` only aggregate
counters exist; per-event checks degrade gracefully (the NV checks
still run) and the verdict is marked ``check_level="counters"``.
Counter-only runs are not blind to re-execution bugs, though: the
trace's always-on failure records (power-failure time, interrupted
task/step category, distance from the last executed I/O) feed a
conservative ``Single``-re-execution screen (:func:`_counter_checks`)
that reports a violation only when no failure could possibly excuse
the counted repeats.
"""

from __future__ import annotations

import numpy as np

from typing import Dict, List, Optional

from repro.hw import trace as T
from repro.hw.trace import Trace
from repro.kernel.executor import RunResult
from repro.check.model import RunVerdict, Schedule, SiteInfo, Violation
from repro.check.oracle import Oracle, consistency_checker, effect_set

#: repeats whose triggering failure landed this close (µs) after the
#: previous execution fall inside the unavoidable flag-write window
DEFAULT_ATOMICITY_WINDOW_US = 50.0


def _nv_equal(a: object, b: object) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return bool(np.array_equal(np.asarray(a), np.asarray(b)))
    return a == b


def _first_failure_after(failures: List[float], t: float) -> Optional[float]:
    for f in failures:
        if f >= t:
            return f
    return None


def _event_checks(
    trace: Trace,
    oracle: Oracle,
    schedule: Schedule,
    atomicity_window_us: float,
) -> List[Violation]:
    violations: List[Violation] = []
    failures = [e.time_us for e in trace.of_kind(T.POWER_FAILURE)]
    last_exec: Dict[object, float] = {}
    dma_suspect = False

    for event in trace.events:
        if event.kind == T.IO_EXEC:
            d = event.detail
            site = str(d.get("site"))
            key = ("io", d.get("seq"), site, d.get("loop"))
            info: Optional[SiteInfo] = oracle.sites.get(site)
            prev = last_exec.get(key)
            if (
                d.get("repeat")
                and prev is not None
                and info is not None
                and info.kind == "io"
                and not info.in_block
                and not info.producers
            ):
                fail = _first_failure_after(failures, prev)
                in_window = (
                    fail is not None
                    and fail - prev <= atomicity_window_us
                )
                if info.semantic == "Single" and not in_window:
                    violations.append(Violation(
                        kind="single_reexec",
                        site=site,
                        task=info.task,
                        time_us=event.time_us,
                        schedule=schedule,
                        detail={
                            "func": info.func,
                            "first_exec_us": prev,
                            "loop": d.get("loop"),
                        },
                    ))
                elif info.semantic == "Timely" and not in_window:
                    age_us = event.time_us - prev
                    if (
                        info.interval_us is not None
                        and age_us < info.interval_us - 1e-6
                    ):
                        violations.append(Violation(
                            kind="timely_reexec",
                            site=site,
                            task=info.task,
                            time_us=event.time_us,
                            schedule=schedule,
                            detail={
                                "func": info.func,
                                "age_us": age_us,
                                "interval_us": info.interval_us,
                                "loop": d.get("loop"),
                            },
                        ))
            last_exec[key] = event.time_us
        elif event.kind == T.DMA_EXEC:
            d = event.detail
            if d.get("phase") == "private_snapshot":
                continue
            if (
                d.get("repeat")
                and not d.get("forced")
                and d.get("semantic") in ("Private", "Single")
            ):
                dma_suspect = True

    if dma_suspect:
        # flag for the NV check's classification, not a violation per se
        violations.append(Violation(
            kind="_dma_repeat_marker",
            site=None, task=None, time_us=None, schedule=schedule,
        ))
    return violations


#: a Timely reading this much older than its interval at commit time is
#: reported; the margin keeps marginal overages (boot costs, guard
#: steps) from flaking the verdict at the freshness boundary
STALE_TIMELY_SLACK = 1.25


def _stale_timely_checks(
    trace: Trace, oracle: Oracle, schedule: Schedule
) -> List[Violation]:
    """Freshness at commit: a ``Timely`` datum must not out-age Δt.

    The re-execution checks above catch *repeats*; this is the dual
    failure mode — a runtime that checkpoints *past* a ``Timely`` site
    resumes after a long dark period and commits the pre-failure
    reading without re-sampling.  Under scripted/uniform timers the
    dark period is zero and ages stay bounded by boot costs, so the
    check is gated on an actual dark period (power failure → boot gap
    > 0): it only fires in energy environments (or harvest mode) where
    an outage physically aged the datum — which is also what keeps
    every timer-only campaign verdict unchanged.

    Exemptions mirror the re-execution checks: sites inside an
    ``IOBlock`` and sites with producers follow scope/dependence
    precedence, so only plain ``Timely`` I/O sites are judged.
    """
    timely = [
        s for s in oracle.sites.values()
        if s.kind == "io"
        and s.semantic == "Timely"
        and s.interval_us is not None
        and not s.in_block
        and not s.producers
    ]
    if not timely:
        return []
    by_task: Dict[object, List[SiteInfo]] = {}
    for s in timely:
        by_task.setdefault(s.task, []).append(s)

    failures = [e.time_us for e in trace.of_kind(T.POWER_FAILURE)]
    boots = [e.time_us for e in trace.of_kind(T.BOOT)]
    violations: List[Violation] = []
    reported: set = set()
    last_exec: Dict[str, float] = {}

    def dark_failure_in(t_from: float, t_to: float) -> Optional[tuple]:
        """Last failure in (t_from, t_to) whose dark period was real."""
        for f in reversed(failures):
            if f <= t_from:
                break
            if f >= t_to:
                continue
            boot = _first_failure_after(boots, f)
            if boot is not None and boot - f > 1e-9:
                return f, boot - f
        return None

    for event in trace.events:
        if event.kind == T.IO_EXEC:
            last_exec[str(event.detail.get("site"))] = event.time_us
        elif event.kind == T.TASK_COMMIT:
            sites = by_task.get(event.detail.get("task"))
            if not sites:
                continue
            t_c = event.time_us
            for s in sites:
                if s.site in reported:
                    continue
                t_e = last_exec.get(s.site)
                if t_e is None or t_e > t_c:
                    continue
                age_us = t_c - t_e
                if age_us <= s.interval_us * STALE_TIMELY_SLACK:
                    continue
                dark = dark_failure_in(t_e, t_c)
                if dark is None:
                    continue
                reported.add(s.site)
                violations.append(Violation(
                    kind="timely_stale",
                    site=s.site,
                    task=s.task,
                    time_us=t_c,
                    schedule=schedule,
                    detail={
                        "func": s.func,
                        "age_us": age_us,
                        "interval_us": s.interval_us,
                        "last_exec_us": t_e,
                        "failure_us": dark[0],
                        "dark_us": dark[1],
                    },
                ))
    return violations


def _missing_effect_checks(
    trace: Trace, oracle: Oracle, schedule: Schedule
) -> List[Violation]:
    violations: List[Violation] = []
    missing = oracle.effects - effect_set(trace)
    for kind, seq, site, loop in sorted(
        missing, key=lambda k: (str(k[2]), str(k[1]), str(k[3]))
    ):
        info = oracle.sites.get(site)
        semantic = info.semantic if info else "?"
        violations.append(Violation(
            kind="always_skip" if semantic == "Always" else "io_missing",
            site=site,
            task=info.task if info else None,
            time_us=None,
            schedule=schedule,
            detail={"seq": seq, "loop": loop, "semantic": semantic},
        ))
    return violations


def _nv_checks(
    result: RunResult,
    oracle: Oracle,
    schedule: Schedule,
    dma_suspect: bool,
) -> List[Violation]:
    run_nv = result.runtime.result_state(  # type: ignore[attr-defined]
        list(oracle.result_vars)
    )
    checker = consistency_checker(oracle.app)
    if checker is not None:
        if not checker(run_nv):
            kind = "dma_privatization" if dma_suspect else "nv_divergence"
            return [Violation(
                kind=kind,
                site=None, task=None,
                time_us=result.metrics.total_time_us,
                schedule=schedule,
                detail={"check": f"repro.apps.{oracle.app}.check_consistency"},
            )]
        return []
    if oracle.deterministic:
        diverged = [
            name for name in oracle.result_vars
            if not _nv_equal(run_nv.get(name), oracle.nv.get(name))
        ]
        if diverged:
            kind = "dma_privatization" if dma_suspect else "nv_divergence"
            return [Violation(
                kind=kind,
                site=None, task=None,
                time_us=result.metrics.total_time_us,
                schedule=schedule,
                detail={"vars": diverged},
            )]
    return []


def _counters(trace: Trace) -> Dict[str, int]:
    keys = (
        T.IO_EXEC, f"{T.IO_EXEC}:repeat",
        f"{T.IO_EXEC}:Single:repeat", f"{T.IO_EXEC}:Timely:repeat",
        T.IO_SKIP, T.IO_SKIP_BLOCK,
        T.DMA_EXEC, f"{T.DMA_EXEC}:repeat", T.DMA_SKIP,
        f"{T.DMA_EXEC}:forced", f"{T.DMA_EXEC}:nbytes",
        T.PRIVATIZE, T.RESTORE, f"{T.PRIVATIZE}:nbytes",
        T.POWER_FAILURE, T.TASK_COMMIT,
    )
    return {k: trace.count(k) for k in keys if trace.count(k)}


def _counter_checks(
    trace: Trace,
    oracle: Oracle,
    schedule: Schedule,
    atomicity_window_us: float,
) -> List[Violation]:
    """Sound ``Single`` re-execution screen for counter-only runs.

    With ``trace_events=False`` there are no per-event timestamps, but
    the trace still maintains the ``io_exec:Single:repeat`` aggregate
    and the always-on :class:`~repro.hw.trace.FailureRecord` list,
    whose ``since_io_us`` measures each power failure's distance from
    the *last* executed I/O.  That is enough for a conservative
    verdict:

    * the check only applies when every ``Single`` I/O site of the
      program is unconditioned (not inside an ``IOBlock``, no
      producers) — otherwise a repeat can be a legal forced
      re-execution and we must stand down;
    * a repeat is only reportable when **zero** failures landed within
      the atomicity window of their preceding I/O: any event-excusable
      repeat requires some failure within the window of the execution
      that preceded it, and that failure's ``since_io_us`` (distance
      to the last I/O before it, which is at least as recent) is then
      within the window too.  So ``excused == 0`` proves no repeat was
      excusable, and at least one of the counted repeats is a genuine
      violation.

    The screen can miss violations (a benign in-window failure hides
    same-run unexcused repeats) but never false-positives — exactly
    the degraded-but-sound contract counters mode promises.
    """
    repeats = trace.count(f"{T.IO_EXEC}:Single:repeat")
    if not repeats:
        return []
    singles = [
        s for s in oracle.sites.values()
        if s.kind == "io" and s.semantic == "Single"
    ]
    if not singles or any(s.in_block or s.producers for s in singles):
        return []
    excused = sum(
        1 for rec in trace.failures
        if rec.since_io_us <= atomicity_window_us
    )
    if excused:
        return []
    return [Violation(
        kind="single_reexec",
        site=None,
        task=None,
        time_us=None,
        schedule=schedule,
        detail={
            "check": "counters",
            "single_repeats": repeats,
            "window_excused_failures": excused,
        },
    )]


def diff_run(
    result: RunResult,
    oracle: Oracle,
    schedule: Schedule,
    atomicity_window_us: float = DEFAULT_ATOMICITY_WINDOW_US,
) -> RunVerdict:
    """Judge one injected run against the oracle."""
    trace: Trace = result.runtime.machine.trace  # type: ignore[attr-defined]
    events_mode = trace.enabled
    violations: List[Violation] = []
    dma_suspect = False

    if events_mode:
        found = _event_checks(trace, oracle, schedule, atomicity_window_us)
        dma_suspect = any(v.kind == "_dma_repeat_marker" for v in found)
        violations.extend(v for v in found if v.kind != "_dma_repeat_marker")
        violations.extend(_stale_timely_checks(trace, oracle, schedule))
        if result.completed and not oracle.conditional_io:
            violations.extend(_missing_effect_checks(trace, oracle, schedule))
    else:
        violations.extend(
            _counter_checks(trace, oracle, schedule, atomicity_window_us)
        )

    if result.completed:
        violations.extend(_nv_checks(result, oracle, schedule, dma_suspect))
    else:
        violations.append(Violation(
            kind="incomplete",
            site=None,
            task=None,
            time_us=result.metrics.total_time_us,
            schedule=schedule,
            detail={"died_dark": result.died_dark},
        ))

    return RunVerdict(
        schedule=schedule,
        completed=result.completed,
        power_failures=result.stats.power_failures,
        violations=tuple(violations),
        counters=_counters(trace),
        check_level="events" if events_mode else "counters",
    )
