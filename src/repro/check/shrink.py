"""Delta-debugging of failing schedules.

Random-mode campaigns find violations under multi-failure schedules;
most of those resets are noise.  :func:`ddmin` is Zeller's classic
minimizing delta debugging over the *set of reset times*: it returns a
1-minimal subset — removing any single remaining reset makes the
violation disappear — which is the reproducer worth reading.

The predicate receives a candidate schedule (sorted tuple of times)
and must return True when the candidate still triggers the violation.
It is called O(n²) times in the worst case, but injected runs are
milliseconds, so shrinking even a 10-failure schedule is quick.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

from repro.check.model import Schedule


def ddmin(
    schedule: Sequence[float],
    still_fails: Callable[[Schedule], bool],
) -> Schedule:
    """Minimize ``schedule`` to a 1-minimal failing subset.

    Assumes the full schedule fails; if it somehow does not (flaky
    predicate), the full schedule is returned unchanged.
    """
    current: Tuple[float, ...] = tuple(schedule)
    if len(current) <= 1:
        return current
    if not still_fails(current):
        return current

    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk:]
            if candidate and still_fails(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                # re-scan from the front at the same granularity
                start = 0
                chunk = max(1, len(current) // granularity)
                continue
            start += chunk
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current
