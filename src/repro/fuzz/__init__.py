"""Property-based program generation for the differential checker.

The fuzzer closes the loop the ROADMAP asks for ("handle as many
scenarios as you can imagine"): instead of checking five hand-written
applications, it *generates* random well-formed programs over the full
IR surface — multi-task graphs, Single/Timely/Always annotations,
``_IO_block`` scopes, I/O-to-I/O and I/O-to-DMA dependence chains, and
DMA copies across the whole NV/volatile memory matrix — and feeds each
one through :mod:`repro.check` differentially on all four runtimes.

Layout:

``spec``
    a JSON-serializable program description (the fuzzer's genotype)
    and its compiler into an IR :class:`~repro.ir.ast.Program`;
``gen``
    the seeded generator, constrained by the IR validator and
    :mod:`repro.ir.lint` so every emitted program is well-formed;
``shrink``
    the generator-aware spec minimizer (drop tasks -> drop statements
    -> flatten scopes -> drop unused declarations);
``harness``
    the campaign driver: generate, check on every runtime, classify
    divergences against the paper's Figure-2 bug classes, shrink, and
    persist minimal reproducers to a regression corpus.
"""

from repro.fuzz.spec import (
    DEFAULT_SPEC,
    DEFAULT_SPEC_JSON,
    build_program,
    count_statements,
    spec_from_json,
    spec_to_json,
    validate_spec,
)
from repro.fuzz.gen import generate_spec, generate_valid_spec
from repro.fuzz.shrink import shrink_spec

#: harness symbols are loaded lazily (PEP 562): the harness imports
#: repro.check -> repro.apps, and repro.apps imports this package for
#: the ``fuzz`` app slot — an eager import here would be circular
_HARNESS_NAMES = ("BUG_CLASSES", "FuzzConfig", "FuzzReport", "fuzz_run")


def __getattr__(name: str):
    if name in _HARNESS_NAMES:
        from repro.fuzz import harness

        return getattr(harness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BUG_CLASSES",
    "DEFAULT_SPEC",
    "DEFAULT_SPEC_JSON",
    "FuzzConfig",
    "build_program",
    "count_statements",
    "fuzz_run",
    "generate_spec",
    "generate_valid_spec",
    "shrink_spec",
    "spec_from_json",
    "spec_to_json",
    "validate_spec",
]
