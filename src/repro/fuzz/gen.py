"""Seeded generator of well-formed program specs.

Programs are drawn over the full language surface the paper defines:
multi-task chains with an outer round loop, NV/volatile/LEA-RAM
declarations, ``Single``/``Timely``/``Always`` I/O annotations,
``_IO_block`` scopes, loops and branches, and ``_DMA_copy`` across
every memory-type pairing.  Two disciplines keep every emitted program
checkable:

*well-formedness by construction* — the generator respects the
front-end's structural limits (DMA only at task top level, I/O at loop
depth <= 1, no blocks inside loops, in-bounds indices, even DMA sizes
that fit both windows) and stays far inside the energy budget, then
:func:`generate_valid_spec` re-gates every candidate through the IR
validator and the linter's error checks, resampling on the rare miss;

*oracle compatibility* — each program decides up front whether it is
*deterministic* (no value-returning peripheral reads).  Deterministic
programs get the strongest judgement (bit-for-bit NV comparison —
required for the torn-DMA class, which manifests as NV corruption);
environment-sampling programs are judged on effects and re-execution
discipline.  ``GetTime`` is never emitted: storing wall-clock values
would make every NV comparison spuriously diverge.

To make sure the campaign rediscovers the paper's Figure-2 failure
modes (and not merely random divergences), the generator plants known
*hazard idioms* with bounded probability — a ``Single`` transmit with a
compute tail (2a), a fresh-``Timely`` sensor read feeding NV state
(2c), a write-after-read DMA pair (2b / Figure 3), a producer ->
consumer dependence chain (RelatedConstFlag), and annotated I/O
blocks.  Idioms are ordinary spec statements; shrinking and replay
treat them like any other generated code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.fuzz.spec import SPEC_VERSION, validate_spec

#: value-returning peripherals (sampling them makes a program
#: environment-dependent) and pure-effect peripherals
SENSORS = ("temp", "humidity", "pressure")
EFFECTS = ("radio", "tx_sim")

SEMANTICS = ("Single", "Timely", "Always")

#: Timely windows (ms) — all comfortably above the reboot floor
TIMELY_WINDOWS_MS = (5.0, 10.0, 20.0, 40.0, 80.0)

ARRAY_WORDS = (4, 8, 16, 32)


def _expr_const(value: float) -> Dict:
    return {"k": "const", "v": float(value)}


def _expr_var(name: str) -> Dict:
    return {"k": "var", "n": name}


def _expr_idx(name: str, index: Dict) -> Dict:
    return {"k": "idx", "n": name, "i": index}


def _expr_bin(op: str, left: Dict, right: Dict) -> Dict:
    return {"k": "bin", "o": op, "l": left, "r": right}


def _expr_cmp(op: str, left: Dict, right: Dict) -> Dict:
    return {"k": "cmp", "o": op, "l": left, "r": right}


class _SpecGen:
    """One generation attempt (all randomness through ``self.rng``)."""

    def __init__(self, rng: np.random.Generator, name: str) -> None:
        self.rng = rng
        self.name = name
        self.decls: List[Dict] = []
        # metadata: scalars/arrays by storage class
        self.nv_scalars: List[str] = []
        self.local_scalars: List[str] = []
        self.arrays: List[Tuple[str, str, int]] = []  # (name, storage, words)
        self.deterministic = bool(rng.random() < 0.45)
        self._loop_counter = 0
        #: volatile names definitely written so far in the task being
        #: generated (reset per task): reads are only drawn from NV
        #: state plus this set, so no program observes SRAM contents a
        #: reboot would have cleared (the ``stale-volatile`` hazard)
        self._defined: set = set()

    # -- rng helpers -----------------------------------------------------

    def _int(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi]."""
        return int(self.rng.integers(lo, hi + 1))

    def _pick(self, seq):
        return seq[self._int(0, len(seq) - 1)]

    def _chance(self, p: float) -> bool:
        return bool(self.rng.random() < p)

    # -- declarations ----------------------------------------------------

    def _declare_all(self) -> None:
        for i in range(self._int(2, 4)):
            name = f"n{i}"
            dtype = "int32" if self._chance(0.3) else "int16"
            decl: Dict = {"kind": "nv", "name": name, "dtype": dtype}
            if self._chance(0.6):
                decl["init"] = self._int(0, 40)
            self.decls.append(decl)
            self.nv_scalars.append(name)
        for i in range(self._int(2, 3)):
            words = int(self._pick(ARRAY_WORDS))
            name = f"a{i}"
            # always initialized with a distinct affine pattern, so
            # DMA-ordering corruption is observable (torn-DMA needs the
            # overwritten source to actually change the copied bytes)
            k, c = self._int(2, 11), self._int(0, 30)
            self.decls.append({
                "kind": "nv_array", "name": name, "length": words,
                "init": [(j * k + c) % 97 for j in range(words)],
            })
            self.arrays.append((name, "nv", words))
        for i in range(self._int(1, 2)):
            name = f"l{i}"
            self.decls.append({"kind": "local", "name": name})
            self.local_scalars.append(name)
        for i in range(self._int(0, 2)):
            words = int(self._pick(ARRAY_WORDS[:3]))
            name = f"v{i}"
            self.decls.append(
                {"kind": "local_array", "name": name, "length": words}
            )
            self.arrays.append((name, "local", words))
        if self._chance(0.3):
            words = int(self._pick((8, 16)))
            self.decls.append(
                {"kind": "lea_array", "name": "e0", "length": words}
            )
            self.arrays.append(("e0", "lea", words))

    # -- expressions -----------------------------------------------------

    def _scalar_names(self) -> List[str]:
        return self.nv_scalars + self.local_scalars

    def _readable_scalars(self) -> List[str]:
        return self.nv_scalars + [
            n for n in self.local_scalars if n in self._defined
        ]

    def _readable_arrays(self) -> List[Tuple[str, str, int]]:
        # volatile arrays only become readable once *fully* defined
        # (whole-array DMA or a full fill loop) — stricter than the
        # linter's whole-array write tracking, so partially-written
        # SRAM arrays are never observed either
        return [
            a for a in self.arrays if a[1] == "nv" or a[0] in self._defined
        ]

    def _rand_expr(self, depth: int = 0, loop_var: Optional[str] = None) -> Dict:
        roll = self.rng.random()
        readable = self._readable_arrays()
        if depth >= 2 or roll < 0.35:
            return _expr_const(self._int(0, 9))
        if roll < 0.6:
            return _expr_var(self._pick(self._readable_scalars()))
        if roll < 0.75 and readable:
            name, _, words = self._pick(readable)
            if loop_var is not None and self._chance(0.5):
                index: Dict = _expr_var(loop_var)
                # only safe when the loop count is bounded by the array
                # (callers pass loop_var only in that case)
            else:
                index = _expr_const(self._int(0, words - 1))
            return _expr_idx(name, index)
        op = self._pick(("+", "-", "*") if self._chance(0.8) else ("+", "-"))
        return _expr_bin(
            op,
            self._rand_expr(depth + 1, loop_var),
            self._rand_expr(depth + 1, loop_var),
        )

    def _rand_cond(self) -> Dict:
        op = self._pick(("<", "<=", ">", ">=", "==", "!="))
        return _expr_cmp(
            op, _expr_var(self._pick(self._readable_scalars())),
            _expr_const(self._int(0, 20)),
        )

    # -- random statements ----------------------------------------------

    def _rand_assign(
        self, loop_var: Optional[str] = None, define: bool = True
    ) -> Dict:
        if self.arrays and self._chance(0.3):
            name, _, words = self._pick(self.arrays)
            index = (
                _expr_var(loop_var)
                if loop_var is not None and self._chance(0.6)
                else _expr_const(self._int(0, words - 1))
            )
            target: Dict = {"n": name, "i": index}
            scalar = None
        else:
            scalar = self._pick(self._scalar_names())
            target = {"n": scalar}
        expr = self._rand_expr(loop_var=loop_var)
        # expression first, definition second: `l0 = l0 + 1` with an
        # undefined l0 must stay impossible.  ``define=False`` marks
        # conditionally-executed positions (if arms).
        if define and scalar in self.local_scalars:
            self._defined.add(scalar)
        return {"op": "assign", "target": target, "expr": expr}

    def _rand_compute(self) -> Dict:
        return {
            "op": "compute", "cycles": self._int(50, 1200),
            "label": f"w{self._int(0, 99)}",
        }

    def _io_semantic(self) -> Tuple[str, Optional[float]]:
        semantic = self._pick(SEMANTICS)
        interval = (
            float(self._pick(TIMELY_WINDOWS_MS)) if semantic == "Timely"
            else None
        )
        return semantic, interval

    def _rand_io(self, define: bool = True) -> Dict:
        semantic, interval = self._io_semantic()
        out_name: Optional[str] = None
        if not self.deterministic and self._chance(0.55):
            func = self._pick(SENSORS)
            out_name = self._pick(
                self.local_scalars if self._chance(0.7) else self.nv_scalars
            )
        else:
            func = self._pick(EFFECTS + SENSORS)
        args: List[Dict] = []
        if func == "radio":
            args = [self._rand_expr(depth=1)]
        if define and out_name in self.local_scalars:
            self._defined.add(out_name)
        return {
            "op": "io", "func": func, "semantic": semantic,
            "interval_ms": interval,
            "out": None if out_name is None else {"n": out_name},
            "args": args,
        }

    def _rand_dma(self) -> Optional[Dict]:
        src_choices = self._readable_arrays()
        if not src_choices:
            return None
        src = self._pick(src_choices)
        dst_choices = [a for a in self.arrays if a[0] != src[0]]
        if not dst_choices:
            return None
        dst = self._pick(dst_choices)
        max_words = min(src[2], dst[2])
        words = self._int(1, max_words)
        stmt = {
            "op": "dma", "src": src[0], "dst": dst[0],
            "size_bytes": 2 * words, "src_off": 0, "dst_off": 0,
        }
        if self._chance(0.15):
            stmt["exclude"] = True
        if dst[1] != "nv" and words == dst[2]:
            self._defined.add(dst[0])  # whole-array DMA fill
        return stmt

    def _rand_if(self, loop_var: Optional[str] = None) -> Dict:
        # arm writes are conditional: they never define volatiles
        then = [self._rand_assign(loop_var, define=False)]
        if self._chance(0.4):
            then.append(self._rand_compute())
        stmt = {"op": "if", "cond": self._rand_cond(), "then": then}
        if self._chance(0.5):
            stmt["orelse"] = [self._rand_assign(loop_var, define=False)]
        return stmt

    def _rand_loop(self) -> Dict:
        # bound the count by the smallest array so loop-var indexing
        # stays in range for any array the body might pick
        min_words = min((a[2] for a in self.arrays), default=4)
        count = self._int(2, min(8, min_words))
        var = f"i{self._loop_counter}"
        self._loop_counter += 1
        body: List[Dict] = [self._rand_assign(loop_var=var)]
        if self._chance(0.35):
            body.append(self._rand_io())
        if self._chance(0.3):
            body.append(self._rand_assign(loop_var=var))
        return {"op": "loop", "var": var, "count": count, "body": body}

    def _fill_array(self) -> Dict:
        """Full fill loop over a volatile array, making it readable."""
        candidates = [
            a for a in self.arrays
            if a[1] != "nv" and a[0] not in self._defined
        ]
        if not candidates:
            return self._rand_assign()
        name, _, words = self._pick(candidates)
        var = f"i{self._loop_counter}"
        self._loop_counter += 1
        body = [{
            "op": "assign", "target": {"n": name, "i": _expr_var(var)},
            "expr": self._rand_expr(loop_var=None),
        }]
        self._defined.add(name)
        return {"op": "loop", "var": var, "count": words, "body": body}

    def _rand_io_block(self) -> Dict:
        semantic, interval = self._io_semantic()
        body: List[Dict] = [self._rand_io()]
        if self._chance(0.6):
            body.append(self._rand_assign())
        if self._chance(0.5):
            body.append(self._rand_io())
        return {
            "op": "io_block", "semantic": semantic,
            "interval_ms": interval, "body": body,
        }

    def _rand_stmt(self) -> Dict:
        roll = self.rng.random()
        if roll < 0.18:
            return self._rand_assign()
        if roll < 0.25:
            return self._fill_array()
        if roll < 0.40:
            return self._rand_compute()
        if roll < 0.60:
            return self._rand_io()
        if roll < 0.72:
            dma = self._rand_dma()
            if dma is not None:
                return dma
            return self._rand_assign()
        if roll < 0.82:
            return self._rand_if()
        if roll < 0.92:
            return self._rand_loop()
        return self._rand_io_block()

    # -- hazard idioms (Figure 2 / Figure 3) ------------------------------

    def _idiom_repeated_io(self) -> List[Dict]:
        """Fig. 2a: an unguarded ``Single`` transmit with a compute tail."""
        func = self._pick(EFFECTS)
        args = [_expr_var(self._pick(self.nv_scalars))] if func == "radio" else []
        return [
            {"op": "io", "func": func, "semantic": "Single",
             "interval_ms": None, "out": None, "args": args},
            {"op": "compute", "cycles": self._int(400, 1500), "label": "tail"},
        ]

    def _idiom_stale_timely(self) -> List[Dict]:
        """Fig. 2c flavor: a ``Timely`` sensor read feeding NV state."""
        local = self._pick(self.local_scalars)
        nv = self._pick(self.nv_scalars)
        return [
            {"op": "io", "func": self._pick(SENSORS), "semantic": "Timely",
             "interval_ms": float(self._pick(TIMELY_WINDOWS_MS[1:])),
             "out": {"n": local}, "args": []},
            {"op": "assign", "target": {"n": nv},
             "expr": _expr_bin("+", _expr_var(local),
                               _expr_const(self._int(0, 5)))},
            {"op": "compute", "cycles": self._int(300, 1000), "label": "use"},
        ]

    def _idiom_torn_dma(self) -> Optional[List[Dict]]:
        """Fig. 2b / Fig. 3: a write-after-read DMA pair over NV arrays.

        ``a -> c`` then ``b -> a``: on a re-execution after the second
        copy committed bytes, the first copy re-reads its own
        overwritten source — NV corruption unless the runtime
        privatizes (or, with ``Single`` classification, skips).
        """
        nv_arrays = [a for a in self.arrays if a[1] == "nv"]
        if len(nv_arrays) < 3:
            return None
        a, b, c = (self._pick(nv_arrays) for _ in range(3))
        names = {a[0], b[0], c[0]}
        if len(names) < 3:
            picks = [x for x in nv_arrays]
            self.rng.shuffle(picks)
            if len(picks) < 3:
                return None
            a, b, c = picks[0], picks[1], picks[2]
        words = min(a[2], b[2], c[2])
        size = 2 * self._int(1, words)
        return [
            {"op": "dma", "src": a[0], "dst": c[0], "size_bytes": size,
             "src_off": 0, "dst_off": 0},
            {"op": "compute", "cycles": self._int(100, 600), "label": "war"},
            {"op": "dma", "src": b[0], "dst": a[0], "size_bytes": size,
             "src_off": 0, "dst_off": 0},
        ]

    def _idiom_dependence_chain(self) -> List[Dict]:
        """Sensor -> memory -> DMA chain (RelatedConstFlag forcing)."""
        local = self._pick(self.local_scalars)
        nv_arrays = [a for a in self.arrays if a[1] == "nv"]
        src = self._pick(nv_arrays)
        dst_choices = [a for a in self.arrays if a[0] != src[0]]
        dst = self._pick(dst_choices)
        size = 2 * self._int(1, min(src[2], dst[2]))
        return [
            {"op": "io", "func": self._pick(SENSORS), "semantic": "Single",
             "interval_ms": None, "out": {"n": local}, "args": []},
            {"op": "assign", "target": {"n": src[0], "i": _expr_const(0)},
             "expr": _expr_var(local)},
            {"op": "dma", "src": src[0], "dst": dst[0], "size_bytes": size,
             "src_off": 0, "dst_off": 0},
        ]

    def _plant_idioms(self) -> List[List[Dict]]:
        """The hazard idioms this program carries (possibly none)."""
        idioms: List[List[Dict]] = []
        if self._chance(0.45):
            idioms.append(self._idiom_repeated_io())
        if self.deterministic:
            if self._chance(0.6):
                torn = self._idiom_torn_dma()
                if torn is not None:
                    idioms.append(torn)
        else:
            if self._chance(0.5):
                idioms.append(self._idiom_stale_timely())
            if self._chance(0.3):
                idioms.append(self._idiom_dependence_chain())
        return idioms

    # -- assembly --------------------------------------------------------

    def generate(self) -> Dict:
        self._declare_all()
        n_tasks = self._int(1, 4)
        rounds = self._int(2, 3) if self._chance(0.5) else 1

        tasks: List[Dict] = []
        for t in range(n_tasks):
            self._defined = set()  # volatile state dies at task edges
            stmts = [self._rand_stmt() for _ in range(self._int(1, 4))]
            tasks.append({"name": f"t{t}", "stmts": stmts})

        # idioms land at the top level of a random task, where DMA
        # statements are structurally legal
        for idiom in self._plant_idioms():
            task = tasks[self._int(0, n_tasks - 1)]
            pos = self._int(0, len(task["stmts"]))
            task["stmts"][pos:pos] = idiom

        # DMA statements are top-level-only; anything _rand_stmt nested
        # illegally is caught by the validate gate and resampled
        return {
            "version": SPEC_VERSION,
            "name": self.name,
            "rounds": rounds,
            "decls": self.decls,
            "tasks": tasks,
        }


def generate_spec(rng: np.random.Generator, name: str = "fuzz") -> Dict:
    """One generation attempt (may rarely fail the validity gate)."""
    return _SpecGen(rng, name).generate()


def generate_valid_spec(
    seed: int, index: int, max_attempts: int = 25
) -> Dict:
    """A validated spec, deterministic in ``(seed, index)``.

    Each attempt draws from an independent stream keyed by
    ``(seed, index, attempt)``, so resampling after a validity miss
    can never desynchronize other indices — the workers>1 fuzzing path
    relies on this for reproducible corpora.
    """
    for attempt in range(max_attempts):
        rng = np.random.default_rng([int(seed), int(index), attempt])
        spec = generate_spec(rng, name=f"fuzz_{seed}_{index}")
        if not validate_spec(spec):
            return spec
    raise ReproError(
        f"no valid program after {max_attempts} attempts "
        f"(seed={seed}, index={index}) — generator constraints drifted "
        f"from the front-end's structural limits"
    )
