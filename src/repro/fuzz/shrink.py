"""Generator-aware spec minimization.

The campaign's :func:`repro.check.shrink.ddmin` minimizes the failure
*schedule*; this module minimizes the failing *program*.  Candidates
are structural simplifications of the spec, tried greedily until a
fixpoint:

1. drop whole tasks (the inter-task chain is scaffolding, so the
   remaining tasks re-link automatically);
2. collapse the outer round loop (``rounds -> 1``);
3. drop individual statements, at any nesting depth;
4. flatten compound statements (hoist an ``io_block``/``loop`` body,
   replace an ``if`` by one of its arms);
5. weaken I/O statements (drop the stored result, drop arguments);
6. drop declarations nothing references any more.

Every candidate is re-gated through :func:`repro.fuzz.spec.validate_spec`
before the (expensive) reproduction predicate runs — an illegal
simplification (e.g. hoisting a loop body that uses the loop variable)
is simply skipped.  The predicate is campaign-backed and therefore
deterministic, so shrinking the same failure always yields the same
minimal reproducer — the property the committed corpus relies on.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Iterator, List

from repro.fuzz.spec import validate_spec


def _clone(spec: Dict) -> Dict:
    return json.loads(json.dumps(spec))


def _iter_stmt_positions(stmts: List[Dict], prefix) -> Iterator[tuple]:
    """Depth-first addresses of every statement in a body."""
    for i, s in enumerate(stmts):
        yield prefix + ((i,),)
        for key in ("body", "then", "orelse"):
            if s.get(key):
                yield from _iter_stmt_positions(s[key], prefix + ((i, key),))


def _resolve(task: Dict, path) -> tuple:
    """(container_list, index) addressed by ``path`` inside ``task``."""
    stmts = task["stmts"]
    for step in path[:-1]:
        stmts = stmts[step[0]][step[1]]
    return stmts, path[-1][0]


def _all_positions(spec: Dict) -> List[tuple]:
    out = []
    for t, task in enumerate(spec.get("tasks", ())):
        for path in _iter_stmt_positions(task.get("stmts", ()), ()):
            out.append((t, path))
    return out


def _referenced_names(spec: Dict) -> set:
    names = set()

    def expr(e) -> None:
        if not isinstance(e, dict):
            return
        if "n" in e:
            names.add(e["n"])
        for v in e.values():
            expr(v) if isinstance(v, dict) else None

    def stmt(s: Dict) -> None:
        for key in ("target", "out", "cond", "expr"):
            if isinstance(s.get(key), dict):
                expr(s[key])
        for a in s.get("args", ()):
            expr(a)
        for key in ("src", "dst"):
            if s.get(key):
                names.add(s[key])
        for key in ("body", "then", "orelse"):
            for inner in s.get(key, ()):
                stmt(inner)

    for task in spec.get("tasks", ()):
        for s in task.get("stmts", ()):
            stmt(s)
    return names


def _candidates(spec: Dict) -> Iterator[Dict]:
    """Structural simplifications, biggest expected win first."""
    # 1. drop whole tasks
    tasks = spec.get("tasks", ())
    if len(tasks) > 1:
        for t in range(len(tasks)):
            cand = _clone(spec)
            del cand["tasks"][t]
            yield cand

    # 2. collapse the round loop
    if int(spec.get("rounds", 1)) > 1:
        cand = _clone(spec)
        cand["rounds"] = 1
        yield cand

    # 3. drop single statements (deepest last, so inner noise goes
    # before the container it lives in)
    for t, path in _all_positions(spec):
        cand = _clone(spec)
        stmts, idx = _resolve(cand["tasks"][t], path)
        del stmts[idx]
        yield cand

    # 4. flatten compound statements
    for t, path in _all_positions(spec):
        stmts, idx = _resolve(spec["tasks"][t], path)
        s = stmts[idx]
        op = s.get("op")
        replacements: List[List[Dict]] = []
        if op in ("io_block", "loop") and s.get("body"):
            replacements.append(s["body"])
        elif op == "if":
            if s.get("then"):
                replacements.append(s["then"])
            if s.get("orelse"):
                replacements.append(s["orelse"])
        for body in replacements:
            cand = _clone(spec)
            cstmts, cidx = _resolve(cand["tasks"][t], path)
            cstmts[cidx:cidx + 1] = json.loads(json.dumps(body))
            yield cand

    # 5. weaken I/O statements
    for t, path in _all_positions(spec):
        stmts, idx = _resolve(spec["tasks"][t], path)
        s = stmts[idx]
        if s.get("op") != "io":
            continue
        if s.get("out") is not None:
            cand = _clone(spec)
            cstmts, cidx = _resolve(cand["tasks"][t], path)
            cstmts[cidx]["out"] = None
            yield cand
        if s.get("args"):
            cand = _clone(spec)
            cstmts, cidx = _resolve(cand["tasks"][t], path)
            cstmts[cidx]["args"] = []
            yield cand

    # 6. drop unreferenced declarations (one shot)
    used = _referenced_names(spec)
    unused = [
        d for d in spec.get("decls", ()) if d.get("name") not in used
    ]
    if unused:
        cand = _clone(spec)
        cand["decls"] = [
            d for d in cand["decls"] if d.get("name") in used
        ]
        yield cand


def shrink_spec(
    spec: Dict,
    reproduces: Callable[[Dict], bool],
    max_evals: int = 250,
) -> Dict:
    """Greedy fixpoint minimization of ``spec`` under ``reproduces``.

    ``reproduces`` judges a *valid* candidate (invalid ones are
    filtered here, without charging the budget); it must be
    deterministic.  Returns the smallest spec found — ``spec`` itself
    when nothing smaller reproduces or the evaluation budget
    (``max_evals`` predicate calls) runs out.
    """
    best = spec
    evals = 0
    improved = True
    while improved and evals < max_evals:
        improved = False
        for cand in _candidates(best):
            if validate_spec(cand):
                continue
            evals += 1
            if reproduces(cand):
                best = cand
                improved = True
                break
            if evals >= max_evals:
                break
    return best
