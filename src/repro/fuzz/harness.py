"""The fuzzing campaign driver.

One fuzz run is a loop over program indices: generate a validated spec
(deterministic in ``(seed, index)``), check it differentially on every
configured runtime with boundary-probe fault injection, and classify
the divergences.  The paper's claim (section 5.4) is directional:
baseline runtimes *should* diverge on programs that exercise the
Figure-2 hazards, while EaseIO must stay clean — so baseline
divergences are findings to catalog and EaseIO divergences are
failures of the reproduction itself (the run's ``ok`` flag and the
CLI exit status track only the latter).

For the first divergence of each ``(runtime, violation-kind)`` pair
the harness minimizes the *program* with the generator-aware shrinker
(:mod:`repro.fuzz.shrink`), re-checks the shrunk spec (including that
EaseIO still accepts it), extracts the minimal failure schedule via
the campaign's own ddmin pass, and — when a corpus directory is
configured — persists the whole reproducer as a JSON corpus entry
that ``tests/fuzz/test_corpus.py`` replays as an ordinary pytest case.

Parallel fuzzing (``workers > 1``) follows the campaign runner's
determinism discipline: per-index results stream back unordered but
are re-slotted by index (missing slots are a hard error, never a
silent drop), and the shrink/corpus phase walks them in index order in
the parent — so a fixed seed yields the same report and the same
corpus regardless of worker count.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import fastpath
from repro.check import CampaignConfig, run_campaign
from repro.check.model import VIOLATION_KINDS
from repro.env.spec import describe_env, random_env_spec
from repro.errors import CampaignInterrupted
from repro.fuzz.gen import generate_valid_spec
from repro.fuzz.shrink import shrink_spec
from repro.fuzz.spec import count_statements, spec_to_json
from repro.ir.lint import LINT_VERSION
from repro.ir.semantics import SEMANTICS_VERSION
# canonical home moved to repro.obs.campaign; re-exported here because
# tests and corpus tooling import it from the harness
from repro.obs import series as obs_series
from repro.obs.campaign import BUG_CLASSES, CampaignTelemetry
from repro.serve.scheduler import BatchScheduler, WorkUnit
from repro.serve.store import ResultStore, campaign_digest, unit_key

DEFAULT_RUNTIMES: Tuple[str, ...] = ("easeio", "alpaca", "ink", "samoyed")

CORPUS_VERSION = 1


@dataclass
class FuzzConfig:
    """All knobs of one fuzzing run."""

    runs: int = 100
    seed: int = 0
    workers: int = 1
    corpus_dir: Optional[str] = None
    runtimes: Tuple[str, ...] = DEFAULT_RUNTIMES
    #: exhaustive-boundary cap per campaign (keeps per-program cost flat)
    limit: int = 24
    env_seed: int = 1
    #: energy-environment axis: each program index is checked under
    #: ``envs[index % len(envs)]`` (spec strings per
    #: ``repro.env.parse_env``; the sentinel ``"random"`` draws a fresh
    #: seeded spec per index, so the fuzzer mutates environment
    #: parameters alongside programs).  Empty: ideal supply.
    envs: Tuple[str, ...] = ()
    shrink: bool = True
    #: boundary cap inside the shrinker's reproduction predicate
    shrink_limit: int = 16
    max_shrink_evals: int = 200
    progress: bool = False
    #: content-addressed result store directory (None: no store) —
    #: per-program differential summaries are cached by (seed, index,
    #: runtimes, limit, fastpath, semantics/lint version)
    store_dir: Optional[str] = None
    #: physical store layout: "fs" | "sqlite" | None (sniff what's on
    #: disk, else honour REPRO_STORE_BACKEND, else "fs")
    store_backend: Optional[str] = None
    #: checkpoint journal path (None: no checkpoint) — an interrupted
    #: fuzz run re-run with the same config resumes where it died
    checkpoint: Optional[str] = None


@dataclass
class FuzzReport:
    """Everything one fuzzing run produced."""

    runs: int
    seed: int
    runtimes: Tuple[str, ...]
    limit: int
    programs: List[Dict]                 # per-index summaries
    by_runtime: Dict[str, Dict[str, int]]  # runtime -> kind -> count
    easeio_divergences: List[Dict]       # reproduction failures
    reproducers: List[Dict]              # shrunk baseline divergences
    bug_classes_found: Dict[str, str]    # bug class -> "rt:kind" or ""
    elapsed_s: float
    notes: List[str] = field(default_factory=list)
    #: obs campaign telemetry block (runs/s over time, shrink evals,
    #: divergence rates by bug class)
    telemetry: Dict[str, object] = field(default_factory=dict)
    #: the full replayable fuzz configuration — any report can be
    #: re-submitted verbatim via ``repro serve submit --from-report``
    config: Dict[str, object] = field(default_factory=dict)
    #: True when the run was interrupted: programs cover only the
    #: indices checked before the interrupt (resumable via checkpoint)
    partial: bool = False

    @property
    def ok(self) -> bool:
        """No divergence attributed to the EaseIO runtime."""
        return not self.easeio_divergences and not self.partial

    def to_json(self) -> Dict[str, object]:
        return {
            "runs": self.runs,
            "seed": self.seed,
            "runtimes": list(self.runtimes),
            "limit": self.limit,
            "ok": self.ok,
            "config": dict(self.config),
            "partial": self.partial,
            "n_divergent_programs": sum(
                1 for p in self.programs if p["divergent_runtimes"]
            ),
            "by_runtime": {
                rt: dict(kinds) for rt, kinds in self.by_runtime.items()
            },
            "easeio_divergences": list(self.easeio_divergences),
            "reproducers": list(self.reproducers),
            "bug_classes_found": dict(self.bug_classes_found),
            "programs": list(self.programs),
            "elapsed_s": self.elapsed_s,
            "telemetry": dict(self.telemetry),
            "notes": list(self.notes),
        }

    def render_text(self) -> str:
        lines = [
            f"fuzz: {self.runs} programs, seed {self.seed}, "
            f"runtimes {'/'.join(self.runtimes)}, "
            f"{self.elapsed_s:.1f} s"
        ]
        for rt in self.runtimes:
            kinds = self.by_runtime.get(rt, {})
            total = sum(kinds.values())
            detail = ", ".join(
                f"{k} x{v}" for k, v in sorted(kinds.items())
            ) or "clean"
            lines.append(f"  {rt:8s}: {total:5d} violations ({detail})")
        for cls in sorted(set(BUG_CLASSES.values())):
            where = self.bug_classes_found.get(cls, "")
            mark = f"found ({where})" if where else "not observed"
            lines.append(f"  class {cls:13s}: {mark}")
        if self.reproducers:
            lines.append(f"  reproducers: {len(self.reproducers)} shrunk")
            for r in self.reproducers:
                lines.append(
                    f"    {r['runtime']}/{r['kind']}: program #{r['index']} "
                    f"-> {r['statements']} statements"
                )
        if self.ok:
            lines.append("  verdict: PASS (easeio divergence-free)")
        elif self.partial:
            lines.append(
                f"  verdict: PARTIAL (interrupted after "
                f"{len(self.programs)}/{self.runs} programs)"
            )
        else:
            lines.append(
                f"  verdict: FAIL ({len(self.easeio_divergences)} easeio "
                f"divergence(s) — reproduction bug)"
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


# -- per-program checking ------------------------------------------------


def _campaign(
    spec_json: str,
    runtime: str,
    limit: int,
    env_seed: int,
    shrink: bool = False,
    env: Optional[str] = None,
):
    # inner per-program campaigns are implementation detail, not fleet
    # work: suppress series recording so a fuzz run lands exactly one
    # durable telemetry point (its own), not hundreds
    with obs_series.suppressed():
        return run_campaign(CampaignConfig(
            app="fuzz",
            runtime=runtime,
            mode="exhaustive",
            workers=1,
            env_seed=env_seed,
            limit=limit,
            env=env,
            shrink=shrink,
            build_kwargs={"spec": spec_json},
        ))


def resolve_fuzz_env(cfg: FuzzConfig, index: int) -> Optional[str]:
    """The env spec program ``index`` is checked under (None: ideal).

    Deterministic in ``(cfg.seed, cfg.envs, index)`` — the ``"random"``
    sentinel expands to a seeded :func:`~repro.env.spec.random_env_spec`
    so resumed/cached runs see the same environment.
    """
    if not cfg.envs:
        return None
    spec = cfg.envs[index % len(cfg.envs)]
    if spec == "random":
        return random_env_spec(cfg.seed * 1_000_003 + index)
    return spec


def _semantic_divergence(
    report_ok: bool, by_kind: Dict[str, int], env: Optional[str]
) -> bool:
    """Is this campaign outcome a *semantic* divergence?

    Under an energy environment a ``nontermination`` verdict says the
    environment cannot power the program — a property of the physics
    (a randomly drawn supply can starve any runtime), not of the
    runtime's re-execution semantics — so it never counts as a
    differential finding there.  Any other kind does, and under the
    ideal supply nontermination keeps its usual meaning (the generator
    lint-gates programs to fit a charge cycle, so starving is a bug).
    """
    if report_ok:
        return False
    if env is None:
        return True
    return any(kind != "nontermination" for kind in by_kind)


def check_spec(
    spec: Dict, cfg: FuzzConfig, env: Optional[str] = None
) -> Dict[str, Dict]:
    """Differential verdicts of one spec on every configured runtime."""
    spec_json = spec_to_json(spec)
    out: Dict[str, Dict] = {}
    for runtime in cfg.runtimes:
        report = _campaign(spec_json, runtime, cfg.limit, cfg.env_seed, env=env)
        out[runtime] = {
            "ok": not _semantic_divergence(report.ok, report.by_kind, env),
            "by_kind": dict(report.by_kind),
            "n_runs": report.n_runs,
        }
    return out


# shared config for pool workers (same pattern as repro.check.campaign)
_FCFG: Optional[FuzzConfig] = None


def _init_fuzz_worker(cfg: FuzzConfig) -> None:
    global _FCFG
    _FCFG = cfg


def describe_config(cfg: FuzzConfig) -> Dict[str, object]:
    """The run's full replayable configuration (report block)."""
    return {
        "kind": "fuzz",
        "runs": cfg.runs,
        "seed": cfg.seed,
        "workers": cfg.workers,
        "corpus_dir": cfg.corpus_dir,
        "runtimes": list(cfg.runtimes),
        "limit": cfg.limit,
        "env_seed": cfg.env_seed,
        "envs": list(cfg.envs),
        "shrink": cfg.shrink,
        "shrink_limit": cfg.shrink_limit,
        "max_shrink_evals": cfg.max_shrink_evals,
        "fastpath": fastpath.enabled(),
        "semantics_version": SEMANTICS_VERSION,
        "lint_version": LINT_VERSION,
    }


def fuzz_campaign_digest(cfg: FuzzConfig) -> str:
    """Checkpoint identity of one fuzz run (fan-out-relevant knobs)."""
    return campaign_digest(
        "fuzz",
        runs=cfg.runs,
        seed=cfg.seed,
        runtimes=list(cfg.runtimes),
        limit=cfg.limit,
        env_seed=cfg.env_seed,
        envs=[
            "random" if e == "random" else describe_env(e) for e in cfg.envs
        ],
    )


def fuzz_unit_key(cfg: FuzzConfig, index: int) -> str:
    """Store key of one fuzzed program's differential summary.

    The generated spec is a pure function of ``(seed, index)`` under a
    fixed generator/lint version, so the coordinates stand in for the
    program content; the lint/semantics versions folded in by
    :func:`~repro.serve.store.unit_key` invalidate entries whenever
    that function changes.
    """
    return unit_key(
        "fuzz-unit",
        seed=cfg.seed,
        index=index,
        runtimes=list(cfg.runtimes),
        limit=cfg.limit,
        env_seed=cfg.env_seed,
        env=describe_env(resolve_fuzz_env(cfg, index)),
    )


def _fuzz_one(index: int) -> Dict:
    """Generate and check program ``index`` (runs inside a worker)."""
    assert _FCFG is not None, "fuzz worker context not initialized"
    cfg = _FCFG
    spec = generate_valid_spec(cfg.seed, index)
    env = resolve_fuzz_env(cfg, index)
    runtimes = check_spec(spec, cfg, env=env)
    divergent = [rt for rt, r in runtimes.items() if not r["ok"]]
    summary: Dict = {
        "index": index,
        "name": spec["name"],
        "statements": count_statements(spec),
        "env": env,
        "runtimes": runtimes,
        "divergent_runtimes": divergent,
    }
    if divergent:
        # ship the genotype back only when someone will want it
        summary["spec"] = spec
    return summary


# -- shrinking + corpus --------------------------------------------------


def _kind_reproduces(
    spec: Dict,
    runtime: str,
    kind: str,
    cfg: FuzzConfig,
    telemetry: Optional[CampaignTelemetry] = None,
    env: Optional[str] = None,
) -> bool:
    if telemetry is not None:
        telemetry.note_shrink_eval()
    try:
        report = _campaign(
            spec_to_json(spec), runtime, cfg.shrink_limit, cfg.env_seed,
            env=env,
        )
    except Exception:
        return False
    return kind in report.by_kind


def _build_reproducer(
    summary: Dict,
    runtime: str,
    kind: str,
    cfg: FuzzConfig,
    telemetry: Optional[CampaignTelemetry] = None,
) -> Dict:
    """Shrink one divergence and package it as a corpus entry."""
    spec = summary["spec"]
    env = summary.get("env")
    if cfg.shrink:
        spec = shrink_spec(
            spec,
            lambda cand: _kind_reproduces(
                cand, runtime, kind, cfg, telemetry, env=env
            ),
            max_evals=cfg.max_shrink_evals,
        )
    # final verdicts on the minimized program: the recorded kind with
    # its ddmin-minimal schedule, and the EaseIO cross-check
    final = _campaign(
        spec_to_json(spec), runtime, cfg.limit, cfg.env_seed, shrink=True,
        env=env,
    )
    limit = cfg.limit
    if kind not in final.by_kind and cfg.shrink_limit != cfg.limit:
        # exhaustive thinning samples a different boundary subset at
        # every limit; fall back to the limit the shrink predicate
        # used, where reproduction is guaranteed — and record it, so
        # the corpus replay checks the spec at a limit that works
        limit = cfg.shrink_limit
        final = _campaign(
            spec_to_json(spec), runtime, limit, cfg.env_seed, shrink=True,
            env=env,
        )
    easeio = _campaign(
        spec_to_json(spec), "easeio", limit, cfg.env_seed, env=env
    )
    easeio_clean = not _semantic_divergence(easeio.ok, easeio.by_kind, env)
    minimal_schedule = final.minimal.get(kind)
    return {
        "version": CORPUS_VERSION,
        "runtime": runtime,
        "kind": kind,
        "bug_class": BUG_CLASSES.get(kind, kind),
        "seed": cfg.seed,
        "index": summary["index"],
        "limit": limit,
        "env_seed": cfg.env_seed,
        "env": env,
        "statements": count_statements(spec),
        "by_kind": dict(final.by_kind),
        "minimal_schedule": (
            list(minimal_schedule) if minimal_schedule else None
        ),
        "easeio_clean": easeio_clean,
        "easeio_by_kind": dict(easeio.by_kind),
        "spec": spec,
    }


def _persist_corpus(entries: List[Dict], corpus_dir: str) -> List[str]:
    os.makedirs(corpus_dir, exist_ok=True)
    paths = []
    for entry in entries:
        # env-discovered entries get their own namespace: an emergent
        # reproducer must not clobber the ideal-supply one for the same
        # (class, runtime) pair
        suffix = "_env" if entry.get("env") else ""
        name = f"{entry['bug_class']}_{entry['runtime']}{suffix}.json"
        path = os.path.join(corpus_dir, name)
        with open(path, "w") as fh:
            json.dump(entry, fh, indent=2, sort_keys=True)
            fh.write("\n")
        paths.append(path)
    return paths


# -- the run -------------------------------------------------------------


def _program_counters(summary: Dict) -> Dict[str, int]:
    """Telemetry counters for one fuzzed program's check results.

    ``violations.<kind>`` aggregates across the checked runtimes; like
    the check driver's verdict counters it feeds the series store's
    divergence-by-class rollup (as ``run.violations.<kind>``).
    """
    counters: Dict[str, int] = {"programs": 1}
    for rt, r in summary["runtimes"].items():
        counters[f"checks.{rt}"] = r.get("n_runs", 0)
        for kind, n in r.get("by_kind", {}).items():
            key = f"violations.{kind}"
            counters[key] = counters.get(key, 0) + int(n)
    return counters


def fuzz_run(
    cfg: FuzzConfig,
    cancel: Optional[threading.Event] = None,
    telemetry: Optional[CampaignTelemetry] = None,
    series=None,
    events=None,
    fleet=None,
) -> FuzzReport:
    """Execute one full fuzzing run and fold up the report.

    Like :func:`repro.check.campaign.run_campaign`, the fan-out runs on
    the serve scheduler: ``cancel``/SIGINT drain gracefully and raise
    :class:`~repro.errors.CampaignInterrupted` with a partial,
    resumable report attached; ``store_dir``/``checkpoint`` make
    per-program summaries cacheable and the run resumable.
    """
    _init_fuzz_worker(cfg)
    total = max(0, cfg.runs)
    if telemetry is None:
        telemetry = CampaignTelemetry(
            "fuzz", total, every=10, progress=cfg.progress
        )

    store = (
        ResultStore(cfg.store_dir, backend=cfg.store_backend)
        if cfg.store_dir else None
    )
    scheduler = BatchScheduler(
        workers=max(1, cfg.workers),
        store=store,
        checkpoint_path=cfg.checkpoint,
        campaign=fuzz_campaign_digest(cfg),
        telemetry=telemetry,
        cancel=cancel,
        series=series,
        events=events,
        fleet=fleet,
    )
    units = [
        WorkUnit(
            index=index,
            payload=index,
            key=fuzz_unit_key(cfg, index) if store is not None else "",
        )
        for index in range(total)
    ]
    config = describe_config(cfg)

    try:
        summaries: List[Dict] = scheduler.run(
            units,
            task=_fuzz_one,
            initializer=_init_fuzz_worker,
            initargs=(cfg,),
            counters=_program_counters,
        )
    except CampaignInterrupted as exc:
        done = [exc.results[i] for i in sorted(exc.results)]
        exc.report = _fold_report(
            cfg, done, telemetry, config,
            partial=True,
            extra_notes=[
                f"interrupted: {exc.done}/{exc.total} programs checked"
                + (
                    f"; resumable via checkpoint {cfg.checkpoint}"
                    if cfg.checkpoint else ""
                )
            ],
        )
        raise
    return _fold_report(cfg, summaries, telemetry, config)


def _fold_report(
    cfg: FuzzConfig,
    summaries: List[Dict],
    telemetry: CampaignTelemetry,
    config: Dict[str, object],
    partial: bool = False,
    extra_notes: Optional[List[str]] = None,
) -> FuzzReport:
    """Aggregate per-program summaries into the run report."""
    total = max(0, cfg.runs)

    # aggregate ---------------------------------------------------------
    by_runtime: Dict[str, Dict[str, int]] = {rt: {} for rt in cfg.runtimes}
    easeio_divergences: List[Dict] = []
    for s in summaries:
        for rt, r in s["runtimes"].items():
            for kind, n in r["by_kind"].items():
                by_runtime[rt][kind] = by_runtime[rt].get(kind, 0) + n
        if "easeio" in s["divergent_runtimes"]:
            easeio_divergences.append({
                "index": s["index"],
                "by_kind": s["runtimes"]["easeio"]["by_kind"],
                "spec": s["spec"],
            })

    # shrink the first divergence of each (runtime, kind) pair ----------
    # (skipped for partial reports: the interrupt asked us to stop)
    reproducers: List[Dict] = []
    bug_classes_found: Dict[str, str] = {
        cls: "" for cls in BUG_CLASSES.values()
    }
    seen: set = set()
    for runtime in cfg.runtimes if not partial else ():
        if runtime == "easeio":
            continue  # easeio divergences are failures, not findings
        for s in summaries:
            kinds = s["runtimes"].get(runtime, {}).get("by_kind", {})
            for kind in sorted(kinds, key=_kind_order):
                if kind == "nontermination" and s.get("env"):
                    continue  # environmental starvation, not a finding
                if (runtime, kind) in seen:
                    continue
                seen.add((runtime, kind))
                entry = _build_reproducer(s, runtime, kind, cfg, telemetry)
                reproducers.append(entry)
                cls = entry["bug_class"]
                if cls in bug_classes_found and not bug_classes_found[cls]:
                    bug_classes_found[cls] = f"{runtime}:{kind}"

    notes: List[str] = list(extra_notes or [])
    if cfg.corpus_dir and reproducers:
        paths = _persist_corpus(reproducers, cfg.corpus_dir)
        notes.append(f"corpus: wrote {len(paths)} entries to {cfg.corpus_dir}")
    dirty = [r for r in reproducers if not r["easeio_clean"]]
    if dirty:
        notes.append(
            f"{len(dirty)} shrunk reproducer(s) also diverge on easeio — "
            f"investigate as reproduction bugs"
        )

    # trim heavyweight per-program payloads from the report body (the
    # divergent specs live on in easeio_divergences / reproducers)
    slim = [
        {k: v for k, v in s.items() if k != "spec"} for s in summaries
    ]

    merged_by_kind: Dict[str, int] = {}
    for kinds in by_runtime.values():
        for kind, n in kinds.items():
            merged_by_kind[kind] = merged_by_kind.get(kind, 0) + n

    return FuzzReport(
        runs=total,
        seed=cfg.seed,
        runtimes=tuple(cfg.runtimes),
        limit=cfg.limit,
        programs=slim,
        by_runtime=by_runtime,
        easeio_divergences=easeio_divergences,
        reproducers=reproducers,
        bug_classes_found=bug_classes_found,
        elapsed_s=telemetry.elapsed_s,
        notes=notes,
        telemetry=telemetry.to_json(
            by_kind=merged_by_kind, n_runs=len(summaries)
        ),
        config=config,
        partial=partial,
    )


def _kind_order(kind: str) -> int:
    try:
        return VIOLATION_KINDS.index(kind)
    except ValueError:
        return len(VIOLATION_KINDS)
