"""Program specs: the fuzzer's JSON genotype and its IR compiler.

A *spec* is a plain-dict description of one task-based program —
declarations, task bodies, and a round count.  It exists so generated
programs can cross process boundaries (campaign workers receive the
spec as an ordinary ``build_kwargs`` string, which also keys the
memoized compilation cache), be delta-debugged structurally, and be
committed to a regression corpus as human-readable JSON.

Shape (version 1)::

    {
      "version": 1,
      "name": "fuzz_0_17",
      "rounds": 2,                      # outer sense-process iterations
      "decls": [
        {"kind": "nv", "name": "n0", "dtype": "int16", "init": 3},
        {"kind": "nv_array", "name": "a0", "length": 8, "init": [..]},
        {"kind": "local", "name": "l0"},
        {"kind": "local_array", "name": "v0", "length": 8},
        {"kind": "lea_array", "name": "e0", "length": 8}
      ],
      "tasks": [{"name": "t0", "stmts": [STMT, ...]}, ...]
    }

Statements (``op`` discriminated)::

    {"op": "assign", "target": TGT, "expr": EXPR}
    {"op": "compute", "cycles": 300, "label": "w"}
    {"op": "io", "func": "temp", "semantic": "Timely", "interval_ms": 20,
     "out": TGT|null, "args": [EXPR, ...]}
    {"op": "io_block", "semantic": "Single", "interval_ms": null,
     "body": [STMT, ...]}
    {"op": "dma", "src": "a0", "dst": "a1", "size_bytes": 16,
     "src_off": 0, "dst_off": 0, "exclude": false}
    {"op": "if", "cond": EXPR, "then": [STMT, ...], "orelse": [STMT, ...]}
    {"op": "loop", "var": "i", "count": 4, "body": [STMT, ...]}

Targets are ``{"n": name}`` or ``{"n": name, "i": EXPR}``; expressions
are ``{"k": "const"|"var"|"idx"|"bin"|"cmp"|"not", ...}`` trees.
``GetTime`` is deliberately not expressible: storing wall-clock values
would make every generated program time-dependent and blind the
oracle's bit-for-bit NV comparison.

Control flow between tasks is scaffolding, not genotype: task ``i``
always transitions to task ``i+1``; the last task increments a
reserved ``fz_round`` counter and loops back to the first task until
``rounds`` is reached.  Dropping a task during shrinking therefore
never breaks the chain.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.core.api import E, ProgramBuilder, TaskBuilder
from repro.errors import ProgramError, ReproError
from repro.ir import ast as A
from repro.ir.lint import lint_program

SPEC_VERSION = 1

#: reserved NV counter driving the outer round loop (rounds > 1)
ROUND_VAR = "fz_round"

_EXPR_KEYS = ("const", "var", "idx", "bin", "cmp", "not")
_STMT_OPS = ("assign", "compute", "io", "io_block", "dma", "if", "loop")


class SpecError(ReproError):
    """A malformed program spec."""


# -- JSON ----------------------------------------------------------------


def spec_to_json(spec: Dict) -> str:
    """Canonical JSON text of a spec (stable across processes/runs)."""
    return json.dumps(spec, sort_keys=True, separators=(",", ":"))


def spec_from_json(text: str) -> Dict:
    try:
        spec = json.loads(text)
    except (TypeError, ValueError) as exc:
        raise SpecError(f"spec is not valid JSON: {exc}") from exc
    if not isinstance(spec, dict):
        raise SpecError("spec must be a JSON object")
    version = spec.get("version", SPEC_VERSION)
    if version != SPEC_VERSION:
        raise SpecError(f"unsupported spec version {version!r}")
    return spec


# -- expression / statement compilation ----------------------------------


def _expr(e: Dict) -> A.Expr:
    if not isinstance(e, dict) or "k" not in e:
        raise SpecError(f"malformed expression {e!r}")
    k = e["k"]
    if k == "const":
        return A.Const(float(e["v"]))
    if k == "var":
        return A.Var(str(e["n"]))
    if k == "idx":
        return A.Index(str(e["n"]), _expr(e["i"]))
    if k == "bin":
        return A.BinOp(str(e["o"]), _expr(e["l"]), _expr(e["r"]))
    if k == "cmp":
        return A.Cmp(str(e["o"]), _expr(e["l"]), _expr(e["r"]))
    if k == "not":
        return A.Not(_expr(e["a"]))
    raise SpecError(f"unknown expression kind {k!r}")


def _target(t: Dict) -> E:
    if not isinstance(t, dict) or "n" not in t:
        raise SpecError(f"malformed target {t!r}")
    if "i" in t and t["i"] is not None:
        return E(A.Index(str(t["n"]), _expr(t["i"])))
    return E(A.Var(str(t["n"])))


def _emit(t: TaskBuilder, s: Dict) -> None:
    op = s.get("op")
    if op == "assign":
        t.assign(_target(s["target"]), E(_expr(s["expr"])))
    elif op == "compute":
        t.compute(float(s["cycles"]), str(s.get("label", "")))
    elif op == "io":
        out = s.get("out")
        t.call_io(
            str(s["func"]),
            semantic=str(s.get("semantic", "Always")),
            interval_ms=s.get("interval_ms"),
            out=None if out is None else _target(out),
            args=[E(_expr(a)) for a in s.get("args", ())],
        )
    elif op == "io_block":
        with t.io_block(
            str(s.get("semantic", "Single")), interval_ms=s.get("interval_ms")
        ):
            for inner in s.get("body", ()):
                _emit(t, inner)
    elif op == "dma":
        t.dma_copy(
            str(s["src"]),
            str(s["dst"]),
            int(s["size_bytes"]),
            src_off=int(s.get("src_off", 0)),
            dst_off=int(s.get("dst_off", 0)),
            exclude=bool(s.get("exclude", False)),
        )
    elif op == "if":
        with t.if_(E(_expr(s["cond"]))):
            for inner in s.get("then", ()):
                _emit(t, inner)
        if s.get("orelse"):
            with t.else_():
                for inner in s["orelse"]:
                    _emit(t, inner)
    elif op == "loop":
        with t.loop(str(s["var"]), int(s["count"])):
            for inner in s.get("body", ()):
                _emit(t, inner)
    else:
        raise SpecError(f"unknown statement op {op!r}")


def _declare(b: ProgramBuilder, d: Dict) -> None:
    kind = d.get("kind")
    name = str(d.get("name"))
    dtype = str(d.get("dtype", "int16"))
    if kind == "nv":
        b.nv(name, dtype=dtype, init=d.get("init"))
    elif kind == "nv_array":
        b.nv_array(name, int(d["length"]), dtype=dtype, init=d.get("init"))
    elif kind == "local":
        b.local(name, dtype=dtype, length=int(d.get("length", 1)))
    elif kind == "local_array":
        b.local(name, dtype=dtype, length=int(d["length"]))
    elif kind == "lea_array":
        b.lea_array(name, int(d["length"]), dtype=dtype)
    else:
        raise SpecError(f"unknown declaration kind {kind!r}")


def build_program(spec: Dict) -> A.Program:
    """Compile a spec into a validated, site-assigned IR program."""
    tasks = spec.get("tasks") or ()
    if not tasks:
        raise SpecError("spec has no tasks")
    rounds = int(spec.get("rounds", 1))

    b = ProgramBuilder(str(spec.get("name", "fuzz")))
    for d in spec.get("decls", ()):
        _declare(b, d)
    if rounds > 1:
        b.nv(ROUND_VAR)

    for i, tspec in enumerate(tasks):
        with b.task(str(tspec["name"])) as t:
            for s in tspec.get("stmts", ()):
                _emit(t, s)
            if i + 1 < len(tasks):
                t.transition(str(tasks[i + 1]["name"]))
            elif rounds > 1:
                t.assign(ROUND_VAR, t.v(ROUND_VAR) + 1)
                with t.if_(t.v(ROUND_VAR) < rounds):
                    t.transition(str(tasks[0]["name"]))
                with t.else_():
                    t.halt()
            else:
                t.halt()
    return b.build()


# -- validation / metrics ------------------------------------------------


def validate_spec(spec: Dict, options=None) -> List[str]:
    """Why this spec is *not* a well-formed program ([] when it is).

    Two gates, the same ones the generator promises every emitted
    program passes: the IR validator (via :func:`build_program`) and
    the linter's findings (nested I/O, oversized DMA, non-terminating
    tasks) under default platform parameters.  ``stale-volatile`` and
    ``unsafe-exclude`` are rejected even though the linter grades them
    warnings: a program whose continuous-power meaning differs from
    its intermittent meaning (an uninitialized volatile read, an
    Exclude DMA whose unprotected re-execution is visible) is *by
    construction* divergent on every runtime, so the differential
    oracle would report noise, not runtime bugs.
    """
    try:
        program = build_program(spec)
    except (SpecError, ProgramError, ReproError) as exc:
        return [f"build: {exc}"]
    except (KeyError, TypeError, ValueError) as exc:
        return [f"build: malformed spec ({exc!r})"]
    problems = [
        f"lint: {d}"
        for d in lint_program(program, options=options)
        if d.severity == "error"
        or d.code in ("stale-volatile", "unsafe-exclude")
    ]
    return problems


def count_statements(spec: Dict) -> int:
    """Spec statement count (nested bodies included, scaffolding not)."""

    def count(stmts) -> int:
        total = 0
        for s in stmts:
            total += 1
            for key in ("body", "then", "orelse"):
                total += count(s.get(key, ()))
        return total

    return sum(count(t.get("stmts", ())) for t in spec.get("tasks", ()))


def spec_io_functions(spec: Dict) -> List[str]:
    """Every peripheral function a spec calls (helper for tests/reports)."""
    out: List[str] = []

    def walk(stmts) -> None:
        for s in stmts:
            if s.get("op") == "io":
                out.append(str(s["func"]))
            for key in ("body", "then", "orelse"):
                walk(s.get(key, ()))

    for t in spec.get("tasks", ()):
        walk(t.get("stmts", ()))
    return out


#: minimal always-valid spec, the default program of the ``fuzz`` app
#: slot (so ``python -m repro run fuzz`` works without a spec argument)
DEFAULT_SPEC: Dict = {
    "version": SPEC_VERSION,
    "name": "fuzz_default",
    "rounds": 1,
    "decls": [
        {"kind": "nv", "name": "acc", "dtype": "int32", "init": 0},
        {"kind": "nv_array", "name": "src", "length": 8,
         "init": [3, 1, 4, 1, 5, 9, 2, 6]},
        {"kind": "nv_array", "name": "dst", "length": 8},
    ],
    "tasks": [
        {"name": "t_copy", "stmts": [
            {"op": "compute", "cycles": 200, "label": "warm"},
            {"op": "dma", "src": "src", "dst": "dst", "size_bytes": 16},
        ]},
        {"name": "t_fold", "stmts": [
            {"op": "loop", "var": "i", "count": 8, "body": [
                {"op": "assign", "target": {"n": "acc"},
                 "expr": {"k": "bin", "o": "+", "l": {"k": "var", "n": "acc"},
                          "r": {"k": "idx", "n": "dst",
                                "i": {"k": "var", "n": "i"}}}},
            ]},
        ]},
    ],
}

DEFAULT_SPEC_JSON = spec_to_json(DEFAULT_SPEC)
