"""Intermittent-execution kernel: failure models, executor, metrics.

- :mod:`repro.kernel.power` — timer/scripted failure models
- :mod:`repro.kernel.executor` — the intermittent executor
- :mod:`repro.kernel.stats` — steps, run statistics, metrics
"""

from repro.kernel.executor import IntermittentExecutor, RunResult
from repro.kernel.power import (
    FailureModel,
    NoFailures,
    ScriptedFailures,
    UniformFailureModel,
)
from repro.kernel.stats import APP, BOOT, IO, OVERHEAD, Metrics, RunStats, Step

__all__ = [
    "APP",
    "BOOT",
    "IO",
    "OVERHEAD",
    "FailureModel",
    "IntermittentExecutor",
    "Metrics",
    "NoFailures",
    "RunResult",
    "RunStats",
    "ScriptedFailures",
    "Step",
    "UniformFailureModel",
]
