"""The intermittent executor: drives a runtime under power failures.

The executor owns the passage of time and energy.  A runtime exposes a
step generator (:meth:`~repro.runtimes.base.TaskRuntime.start`); each
yielded :class:`~repro.kernel.stats.Step` is charged against the clock,
the energy meter and (in harvesting mode) the capacitor *before* its
effects are applied — the interpreter applies a step's effects only
when the executor asks for the next step, so a power failure inside a
step window makes the step vanish entirely (all-or-nothing, like an
instruction that never retired).

Two failure sources can interrupt a step:

* the *timer* (:class:`~repro.kernel.power.FailureModel`) — the paper's
  emulated soft resets; the device reboots immediately;
* *energy exhaustion* — in harvesting mode the capacitor drains at the
  step's net power; when it hits the off threshold the device browns
  out and stays dark until the harvester recharges it to the on
  threshold.  An :class:`~repro.env.environment.EnergyEnvironment`
  failure model (``energy_coupled = True``) generalizes this: the
  executor asks it for the brown-out instant inside each step window
  (``fail_time``), commits the survived portion (``commit_window``)
  and lets it integrate the hysteresis dark period on reboot
  (``on_failure``) — identically on the generator and VM paths.

On every failure the executor clears volatile memory, charges the boot
cost, notifies the persistent timekeeper of the dark period, and
restarts the runtime from its committed state.  A task that fails too
many consecutive times without any commit raises
:class:`~repro.errors.NonTermination` (section 3.5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional

from repro.errors import NonTermination, ReproError
from repro.hw import trace as T
from repro.hw.harvester import HarvestSource
from repro.hw.mcu import Machine
from repro.kernel.power import FailureModel, NoFailures
from repro.kernel.stats import BOOT, Metrics, RunStats, Step
from repro.obs import metrics as obs_metrics


@dataclass
class RunResult:
    """Everything a single run produced."""

    metrics: Metrics
    stats: RunStats
    completed: bool
    died_dark: bool = False  # harvesting mode: charge never recovered


class IntermittentExecutor:
    """Runs one runtime instance to completion (or death).

    Parameters
    ----------
    failure_model:
        timer-driven reset schedule (use :class:`NoFailures` for
        continuous power or pure-harvesting runs).
    harvest:
        when given, enables capacitor accounting: steps drain the
        capacitor, failures brown the device out, and reboots wait for
        recharge.  When omitted the supply is ideal (the paper's
        emulated-energy mode).
    max_active_time_us:
        safety valve against runaway experiments.
    nontermination_limit:
        consecutive power failures without a task commit before the
        run is declared non-terminating.
    step_observer:
        optional callback invoked as ``step_observer(now_us, step)``
        for every runtime-yielded step *before* it is charged.  The
        fault-injection checker uses this to discover the step/commit
        boundaries of a run (the candidate failure-injection points);
        the boot step is not reported.
    """

    def __init__(
        self,
        failure_model: Optional[FailureModel] = None,
        harvest: Optional[HarvestSource] = None,
        max_active_time_us: float = 600_000_000.0,
        nontermination_limit: int = 2000,
        step_observer: Optional[Callable[[float, Step], None]] = None,
    ) -> None:
        self.failure_model = failure_model or NoFailures()
        self.harvest = harvest
        self.max_active_time_us = max_active_time_us
        self.nontermination_limit = nontermination_limit
        self.step_observer = step_observer

    # -- power lookup -------------------------------------------------------

    @staticmethod
    def _power_table(machine: Machine) -> Dict[str, float]:
        cost = machine.cost
        table = {
            "cpu": cost.power_cpu_mw,
            "fram": cost.power_fram_mw,
            "dma": cost.power_dma_mw,
            "lea": cost.power_lea_mw,
            "boot": cost.power_boot_mw,
            "timekeeper": cost.power_timekeeper_mw,
        }
        for name in machine.peripherals.names():
            table[name] = machine.peripherals.get(name).power_mw
        return table

    # -- main loop ----------------------------------------------------------------

    def run(self, runtime) -> RunResult:
        """Execute ``runtime`` until it halts, dies dark, or misbehaves."""
        env = (
            self.failure_model
            if getattr(self.failure_model, "energy_coupled", False)
            else None
        )
        if env is not None and self.harvest is not None:
            raise ReproError(
                "an energy environment meters its own capacitor; "
                "combining it with harvest mode double-counts energy"
            )
        vm = getattr(runtime, "_vm", None)
        if vm is not None and self.harvest is None:
            # third execution path: the compiled bytecode VM.  Legacy
            # harvest mode stays on the generator path (not worth
            # specializing); energy environments run on the VM — their
            # fail_time/commit_window hooks are path-agnostic.
            return self._run_vm(runtime, vm)
        machine: Machine = runtime.machine
        stats = RunStats()
        power = self._power_table(machine)
        self.failure_model.reset()

        next_reset = math.inf
        failures_since_commit = 0
        died_dark = False
        dead = False  # set by reboot() when the dark period never ends

        def emit_failure(step_category: str) -> None:
            """Record a power failure, attributed to the interrupted work."""
            machine.trace.emit(
                machine.now_us,
                T.POWER_FAILURE,
                task=runtime.current_task_name(),
                step_category=step_category,
            )

        # loop-invariant lookups, resolved once per run: charge_window
        # executes once per yielded step
        power_get = power.get
        cpu_mw = machine.cost.power_cpu_mw
        clock_advance = machine.clock.advance
        meter_add_power = machine.meter.add_power
        stats_charge = stats.charge
        harvest = self.harvest
        # observability hook: None in the common case, so each charged
        # step pays exactly one ``is not None`` test (the fastpath's
        # zero-overhead contract — see DESIGN.md)
        recorder = machine.trace.recorder

        def charge_window(step: Step) -> bool:
            """Charge a step; returns False when a failure truncated it.

            Advances the clock, meters energy, and (in harvesting mode)
            charges/discharges the capacitor.
            """
            nonlocal next_reset
            draw_mw = power_get(step.category, cpu_mw)
            start = machine.now_us
            end = start + step.duration_us

            fail_at = next_reset
            efail = math.inf
            if env is not None:
                efail = env.fail_time(start, step.duration_us, draw_mw)
                if efail < fail_at:
                    fail_at = efail
            elif harvest is not None:
                harvest_mw = harvest.power_mw(start)
                net_mw = draw_mw - harvest_mw
                if net_mw > 0:
                    usable = machine.capacitor.usable_uj
                    exhaust_at = start + usable / (net_mw * 1e-3)
                    fail_at = min(fail_at, exhaust_at)

            if fail_at < end:
                executed = max(0.0, fail_at - start)
                clock_advance(executed)
                meter_add_power(step.category, draw_mw, executed)
                if env is not None:
                    env.commit_window(start, executed, draw_mw)
                    if efail < next_reset:
                        env.brownout()
                elif harvest is not None:
                    machine.capacitor.charge(
                        harvest.power_mw(start), executed
                    )
                    machine.capacitor.discharge(
                        draw_mw * executed * 1e-3
                    )
                stats_charge(step, executed_us=executed)
                if recorder is not None:
                    recorder.on_step(step, executed, draw_mw * executed * 1e-3)
                return False

            clock_advance(step.duration_us)
            meter_add_power(step.category, draw_mw, step.duration_us)
            if env is not None:
                env.commit_window(start, step.duration_us, draw_mw)
            elif harvest is not None:
                machine.capacitor.charge(
                    harvest.power_mw(start), step.duration_us
                )
                machine.capacitor.discharge(
                    draw_mw * step.duration_us * 1e-3
                )
            stats_charge(step)
            if recorder is not None:
                recorder.on_step(
                    step,
                    step.duration_us,
                    draw_mw * step.duration_us * 1e-3,
                )
            return True

        def reboot(first: bool) -> bool:
            """Dark period + boot charge; returns False if boot failed."""
            nonlocal next_reset, dead
            if not first:
                dark_us = 0.0
                if env is not None:
                    dark_us = env.on_failure(machine.now_us)
                elif self.harvest is not None:
                    harvest_mw = self.harvest.power_mw(machine.now_us)
                    dark_us = machine.capacitor.recharge_to_on(harvest_mw)
                if math.isinf(dark_us):
                    dead = True
                    return False
                machine.clock.advance(dark_us)
                stats.dark_time_us += dark_us
                machine.timekeeper.notify_dark_period(dark_us)
                machine.power_cycle()
                runtime.on_reboot()
            next_reset = self.failure_model.schedule_next(machine.now_us)
            machine.trace.emit(machine.now_us, T.BOOT)
            boot_step = Step(machine.cost.boot_us, BOOT, "boot")
            return charge_window(boot_step)

        # -- initial boot (retrying if the boot window itself fails) -----
        first = True
        while True:
            if reboot(first):
                break
            first = False
            if dead:
                died_dark = True
                break
            if (
                self.harvest is None
                and env is None
                and math.isinf(next_reset)
            ):
                raise ReproError("initial boot failed with no failure model")
            stats.power_failures += 1
            emit_failure("boot")
            failures_since_commit += 1
            if failures_since_commit > self.nontermination_limit:
                raise NonTermination(runtime.current_task_name(), failures_since_commit)

        completed = False
        # hoisted out of the per-step loop (hundreds of thousands of
        # iterations per campaign): bound methods and loop-invariant
        # attribute loads
        commit_count = machine.trace.count
        observer = self.step_observer
        max_active = self.max_active_time_us
        while not completed and not died_dark:
            gen: Iterator[Step] = runtime.start()
            interrupted = False
            last_commits = commit_count(T.TASK_COMMIT)
            interrupted_step: Optional[Step] = None
            for step in gen:
                commits = commit_count(T.TASK_COMMIT)
                if commits != last_commits:
                    failures_since_commit = 0
                    last_commits = commits
                if observer is not None:
                    observer(machine.now_us, step)
                if not charge_window(step):
                    interrupted = True
                    interrupted_step = step
                    break
                if stats.active_time_us > max_active:
                    raise ReproError(
                        f"run exceeded max_active_time_us="
                        f"{self.max_active_time_us}; runaway experiment?"
                    )
            if commit_count(T.TASK_COMMIT) != last_commits:
                failures_since_commit = 0

            if not interrupted:
                completed = True
                break

            stats.power_failures += 1
            emit_failure(
                interrupted_step.category if interrupted_step else "cpu"
            )
            failures_since_commit += 1
            if failures_since_commit > self.nontermination_limit:
                raise NonTermination(
                    runtime.current_task_name(), failures_since_commit
                )
            while not reboot(first=False):
                if dead:
                    died_dark = True
                    break
                stats.power_failures += 1
                emit_failure("boot")
                failures_since_commit += 1
                if failures_since_commit > self.nontermination_limit:
                    raise NonTermination(
                        runtime.current_task_name(), failures_since_commit
                    )

        stats.task_commits = machine.trace.count(T.TASK_COMMIT)
        metrics = self._build_metrics(runtime, machine, stats, completed)
        if recorder is not None:
            recorder.finish(metrics, machine.trace)
        ambient = obs_metrics.ambient()
        if ambient is not None:
            obs_metrics.fold_run(ambient, metrics, machine.trace)
            if env is not None:
                c = ambient.counters
                for key, value in env.counters().items():
                    c[key] = c.get(key, 0) + value
        return RunResult(
            metrics=metrics, stats=stats, completed=completed, died_dark=died_dark
        )

    # -- the VM stepping loop -------------------------------------------------------

    def _run_vm(self, runtime, vm) -> RunResult:
        """Drive compiled bytecode instead of the step generator.

        Observationally identical to :meth:`run` on the same runtime:
        same trace events, metrics, NV state and error behaviour.  The
        hot loop touches only preresolved instruction tuples and plain
        dicts — no generator resumption, no attribute chases, and the
        zero-cost obs contract (a single ``is not None`` test per
        charged step) is preserved.
        """
        machine: Machine = runtime.machine
        stats = RunStats()
        self.failure_model.reset()
        schedule_next = self.failure_model.schedule_next
        env = (
            self.failure_model
            if getattr(self.failure_model, "energy_coupled", False)
            else None
        )

        trace = machine.trace
        emit = trace.emit
        commit_count = trace.count
        recorder = trace.recorder
        observer = self.step_observer
        counters = stats._counters
        meter_get = machine.meter._by_category.get
        meter_cat = machine.meter._by_category
        clock = machine.clock
        code = vm.vmcode.code
        max_active = self.max_active_time_us
        limit = self.nontermination_limit

        boot_step = Step(machine.cost.boot_us, BOOT, "boot")
        boot_draw = machine.cost.power_boot_mw
        boot_dur = boot_step.duration_us
        boot_energy = boot_draw * boot_dur * 1e-3

        now = clock.now_us
        next_reset = math.inf
        failures_since_commit = 0
        died_dark = False
        dead = False  # set by reboot() when the dark period never ends
        ops = 0
        # active time accumulates in a local; the try/finally below
        # folds it into the counter dict on every exit path
        active = 0.0
        snapshots_before = vm.snapshots_taken
        vm.pc = 0  # DISPATCH_PC: fresh run re-reads the committed cursor

        def emit_failure(step_category: str) -> None:
            emit(
                now,
                T.POWER_FAILURE,
                task=runtime.current_task_name(),
                step_category=step_category,
            )

        def charge_boot() -> bool:
            """Charge the boot window; False when a failure truncated it."""
            nonlocal now, active
            start = now
            end = now + boot_dur
            fail_at = next_reset
            efail = math.inf
            if env is not None:
                efail = env.fail_time(start, boot_dur, boot_draw)
                if efail < fail_at:
                    fail_at = efail
            if fail_at < end:
                executed = fail_at - now
                if executed < 0.0:
                    executed = 0.0
                now += executed
                meter_cat["boot"] = meter_get("boot", 0.0) + (
                    boot_draw * executed * 1e-3
                )
                counters["time_us.boot"] += executed
                active += executed
                if env is not None:
                    env.commit_window(start, executed, boot_draw)
                    if efail < next_reset:
                        env.brownout()
                if recorder is not None:
                    recorder.on_step(
                        boot_step, executed, boot_draw * executed * 1e-3
                    )
                return False
            now = end
            meter_cat["boot"] = meter_get("boot", 0.0) + boot_energy
            counters["time_us.boot"] += boot_dur
            active += boot_dur
            if env is not None:
                env.commit_window(start, boot_dur, boot_draw)
            if recorder is not None:
                recorder.on_step(boot_step, boot_dur, boot_energy)
            return True

        def reboot(first: bool) -> bool:
            nonlocal next_reset, now, dead
            if not first:
                dark_us = 0.0
                if env is not None:
                    dark_us = env.on_failure(now)
                    if math.isinf(dark_us):
                        dead = True
                        return False
                    now += dark_us
                    clock._now_us = now
                stats.dark_time_us += dark_us
                machine.timekeeper.notify_dark_period(dark_us)
                machine.power_cycle()
                runtime.on_reboot()
                vm.on_reboot()
            next_reset = schedule_next(now)
            emit(now, T.BOOT)
            return charge_boot()

        # -- initial boot (retrying if the boot window itself fails) -----
        first = True
        while True:
            if reboot(first):
                break
            first = False
            if dead:
                died_dark = True
                break
            if env is None and math.isinf(next_reset):
                raise ReproError("initial boot failed with no failure model")
            stats.power_failures += 1
            emit_failure("boot")
            failures_since_commit += 1
            if failures_since_commit > limit:
                raise NonTermination(
                    runtime.current_task_name(), failures_since_commit
                )

        completed = False
        last_commits = commit_count(T.TASK_COMMIT)
        pc = 0
        while not died_dark:
            dur, step, tk, cat, en, eff, draw = code[pc]
            if dur is None:
                # control instruction: free, just compute the next pc
                ops += 1
                pc = eff(now)
                if pc >= 0:
                    continue
                completed = True
                break
            if observer is not None:
                observer(now, step)
            end = now + dur
            fail_at = next_reset
            efail = math.inf
            if env is not None:
                efail = env.fail_time(now, dur, draw)
                if efail < fail_at:
                    fail_at = efail
            if fail_at < end:
                # -- power failure truncates the step: no effects ------
                executed = fail_at - now
                if executed < 0.0:
                    executed = 0.0
                start = now
                now += executed
                clock._now_us = now
                meter_cat[cat] = meter_get(cat, 0.0) + draw * executed * 1e-3
                counters[tk] += executed
                active += executed
                if env is not None:
                    env.commit_window(start, executed, draw)
                    if efail < next_reset:
                        env.brownout()
                if recorder is not None:
                    recorder.on_step(step, executed, draw * executed * 1e-3)

                commits = commit_count(T.TASK_COMMIT)
                if commits != last_commits:
                    failures_since_commit = 0
                    last_commits = commits
                stats.power_failures += 1
                emit_failure(step.category)
                failures_since_commit += 1
                if failures_since_commit > limit:
                    raise NonTermination(
                        runtime.current_task_name(), failures_since_commit
                    )
                while not reboot(first=False):
                    if dead:
                        died_dark = True
                        break
                    stats.power_failures += 1
                    emit_failure("boot")
                    failures_since_commit += 1
                    if failures_since_commit > limit:
                        raise NonTermination(
                            runtime.current_task_name(), failures_since_commit
                        )
                if died_dark:
                    break
                pc = 0
                continue
            # -- full charge, then the instruction's effects -----------
            if env is not None:
                env.commit_window(now, dur, draw)
            now = end
            try:
                meter_cat[cat] += en
            except KeyError:
                meter_cat[cat] = en
            counters[tk] += dur
            active += dur
            if recorder is not None:
                recorder.on_step(step, dur, en)
            ops += 1
            try:
                pc = eff(now)
            except BaseException:
                clock._now_us = now  # keep now_us honest for error paths
                raise
            if active > max_active:
                clock._now_us = now
                raise ReproError(
                    f"run exceeded max_active_time_us="
                    f"{self.max_active_time_us}; runaway experiment?"
                )
            if pc < 0:
                completed = True
                break

        vm.pc = pc
        clock._now_us = now
        counters["time_us.active"] += active
        stats.task_commits = commit_count(T.TASK_COMMIT)
        metrics = self._build_metrics(runtime, machine, stats, completed)
        if recorder is not None:
            recorder.finish(metrics, trace)
        ambient = obs_metrics.ambient()
        if ambient is not None:
            obs_metrics.fold_run(ambient, metrics, trace)
            c = ambient.counters
            c["vm.runs"] = c.get("vm.runs", 0) + 1
            c["vm.ops_dispatched"] = c.get("vm.ops_dispatched", 0) + ops
            snaps = vm.snapshots_taken - snapshots_before
            if snaps:
                c["vm.snapshots_taken"] = (
                    c.get("vm.snapshots_taken", 0) + snaps
                )
            # per-run attribution: did this run's bytecode come from the
            # compile cache (recycled instance) or a fresh lowering?
            if getattr(runtime, "_vm_cached", False):
                c["vm.compile_cache_hits"] = (
                    c.get("vm.compile_cache_hits", 0) + 1
                )
            else:
                c["vm.compile_cache_misses"] = (
                    c.get("vm.compile_cache_misses", 0) + 1
                )
            if env is not None:
                for key, value in env.counters().items():
                    c[key] = c.get(key, 0) + value
        return RunResult(
            metrics=metrics,
            stats=stats,
            completed=completed,
            died_dark=died_dark,
        )

    # -- metrics assembly -----------------------------------------------------------

    @staticmethod
    def _build_metrics(
        runtime, machine: Machine, stats: RunStats, completed: bool
    ) -> Metrics:
        tr = machine.trace
        return Metrics(
            runtime=runtime.name,
            app=runtime.program_name,
            completed=completed,
            total_time_us=machine.now_us,
            active_time_us=stats.active_time_us,
            dark_time_us=stats.dark_time_us,
            app_time_us=stats.useful_time_us,
            overhead_time_us=stats.overhead_time_us,
            boot_time_us=stats.boot_time_us,
            power_failures=stats.power_failures,
            task_commits=stats.task_commits,
            io_executions=tr.count(T.IO_EXEC),
            io_reexecutions=tr.io_reexecutions(),
            io_skips=tr.count(T.IO_SKIP) + tr.count(T.IO_SKIP_BLOCK),
            dma_executions=tr.count(T.DMA_EXEC),
            dma_reexecutions=tr.dma_reexecutions(),
            dma_skips=tr.count(T.DMA_SKIP),
            energy_uj=machine.meter.total_uj,
            energy_by_category=machine.meter.by_category(),
            memory_footprint=machine.memory_footprint(),
            text_proxy=runtime.text_proxy(),
        )
