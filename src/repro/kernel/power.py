"""Power-failure models.

The paper evaluates under two regimes:

* **Emulated energy** (sections 5.3-5.4): "power failure is simulated by
  random soft resets triggered by an MCU timer with a uniformly
  distributed firing period in the interval of [5 ms, 20 ms]".
  :class:`UniformFailureModel` reproduces that renewal process; the
  device reboots immediately after a soft reset (no dark period).

* **Real harvesting** (section 5.5 / Figure 13): the device browns out
  when its capacitor is exhausted and stays dark until the harvester
  recharges it.  That regime is driven by the executor's capacitor
  accounting; the timer model is set to :class:`NoFailures`.

:class:`ScriptedFailures` exists for tests that need a failure at an
exact instant.

A third regime lives in :mod:`repro.env`:
:class:`~repro.env.environment.EnergyEnvironment` is a failure model
with ``energy_coupled = True`` — the executor recognizes the flag and
derives failure instants from the workload's own energy draw against a
harvest source, instead of (or composed with) a timer.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.errors import ReproError


class FailureModel:
    """Interface: absolute time of the next timer-induced reset."""

    #: True for models that meter energy themselves (the executor then
    #: routes per-step windows through fail_time/commit_window/on_failure)
    energy_coupled = False

    def schedule_next(self, now_us: float) -> float:
        """Called at boot; returns the absolute time of the next reset."""
        raise NotImplementedError

    def reset(self) -> None:
        """Return to the initial state (start of an experiment)."""


class NoFailures(FailureModel):
    """Continuous power: the timer never fires."""

    def schedule_next(self, now_us: float) -> float:
        return math.inf


class UniformFailureModel(FailureModel):
    """Soft resets at i.i.d. uniform intervals (the paper's emulator).

    Each boot re-arms the timer: the next reset fires ``U[low, high]``
    milliseconds later.
    """

    def __init__(self, low_ms: float = 5.0, high_ms: float = 20.0, seed: int = 0) -> None:
        if not 0 < low_ms <= high_ms:
            raise ReproError(
                f"failure interval must satisfy 0 < low <= high "
                f"(got [{low_ms}, {high_ms}])"
            )
        self.low_ms = low_ms
        self.high_ms = high_ms
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def schedule_next(self, now_us: float) -> float:
        interval_ms = self._rng.uniform(self.low_ms, self.high_ms)
        return now_us + interval_ms * 1000.0

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)


class ScriptedFailures(FailureModel):
    """Failures at explicit absolute times (deterministic tests).

    Once the script is exhausted, no further failures fire.
    """

    def __init__(self, times_us: Sequence[float]) -> None:
        self._times = sorted(float(t) for t in times_us)
        if any(t < 0 for t in self._times):
            raise ReproError("scripted failure times must be >= 0")
        self._cursor = 0

    def schedule_next(self, now_us: float) -> float:
        while self._cursor < len(self._times):
            t = self._times[self._cursor]
            if t > now_us:
                return t
            self._cursor += 1
        return math.inf

    def reset(self) -> None:
        self._cursor = 0
