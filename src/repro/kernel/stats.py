"""Run metrics: the five evaluation quantities of section 5.2.

``Step`` is the unit of work the interpreter yields to the executor;
``RunStats`` accumulates them.  ``Metrics`` is the final per-run record
the benchmark harness consumes:

* **wasted work** — active time beyond the continuous-execution useful
  time and the runtime overhead (re-executed work + boot/restore);
* **energy consumption** — from the machine's :class:`EnergyMeter`;
* **execution correctness** — NV result state versus a
  continuous-power reference (computed by the harness);
* **runtime overhead** — time spent in runtime-inserted work
  (privatization, guards, commits);
* **memory overhead** — region allocator high-water marks plus the
  statement-count ``.text`` proxy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry

# Step kinds --------------------------------------------------------------
APP = "app"            # original application computation
IO = "io"              # peripheral / accelerator / DMA busy time
OVERHEAD = "overhead"  # runtime-inserted work (guards, privatization, commits)
BOOT = "boot"          # reboot/restore cost after a power failure

STEP_KINDS = (APP, IO, OVERHEAD, BOOT)

# registry counter names backing RunStats, resolved once at import
_TIME_KEY = {k: "time_us." + k for k in STEP_KINDS}
_ACTIVE_KEY = "time_us.active"
_DARK_KEY = "time_us.dark"
_FAILURES_KEY = "power_failures"
_COMMITS_KEY = "task_commits"


@dataclass(frozen=True, slots=True)
class Step:
    """One atomic slice of machine activity.

    The interpreter yields the step *before* applying its effects; the
    executor charges time/energy and may abandon the step at a power
    failure, in which case the effects never happen (all-or-nothing).

    Slotted: the interpreter allocates one per yielded slice, tens of
    thousands per simulated run.
    """

    duration_us: float
    kind: str
    category: str = "cpu"  # energy-meter category

    def __post_init__(self) -> None:
        if self.duration_us < 0:
            raise ReproError(f"step duration must be >= 0, got {self.duration_us}")
        if self.kind not in STEP_KINDS:
            raise ReproError(f"unknown step kind {self.kind!r}")


class RunStats:
    """Accumulates steps and events during one run.

    Since the `repro.obs` refactor there is a single source of truth:
    the accumulators live as plain counters inside a
    :class:`~repro.obs.metrics.MetricsRegistry` (``time_us.app``,
    ``time_us.active``, ``power_failures``, …), and this class is a thin
    hot-path view over that dict — the executor keeps writing through
    :meth:`charge` while metrics consumers read the registry directly.
    The historical attribute surface (``time_by_kind``,
    ``power_failures = …``) is preserved as properties so existing
    benchmark and test code keeps working unchanged.
    """

    __slots__ = ("registry", "_counters")

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        c = self.registry.counters
        for key in _TIME_KEY.values():
            c.setdefault(key, 0.0)
        c.setdefault(_ACTIVE_KEY, 0.0)
        c.setdefault(_DARK_KEY, 0.0)
        c.setdefault(_FAILURES_KEY, 0)
        c.setdefault(_COMMITS_KEY, 0)
        self._counters = c

    def charge(self, step: Step, executed_us: Optional[float] = None) -> None:
        """Account (possibly truncated) execution of a step."""
        duration = step.duration_us if executed_us is None else executed_us
        c = self._counters
        c[_TIME_KEY[step.kind]] += duration
        c[_ACTIVE_KEY] += duration

    # -- back-compat read/write surface -----------------------------------

    @property
    def time_by_kind(self) -> Dict[str, float]:
        """Computed view over the registry counters (do not mutate)."""
        c = self._counters
        return {k: c[key] for k, key in _TIME_KEY.items()}

    @property
    def power_failures(self) -> int:
        return self._counters[_FAILURES_KEY]

    @power_failures.setter
    def power_failures(self, value: int) -> None:
        self._counters[_FAILURES_KEY] = value

    @property
    def task_commits(self) -> int:
        return self._counters[_COMMITS_KEY]

    @task_commits.setter
    def task_commits(self, value: int) -> None:
        self._counters[_COMMITS_KEY] = value

    @property
    def dark_time_us(self) -> float:
        return self._counters[_DARK_KEY]

    @dark_time_us.setter
    def dark_time_us(self, value: float) -> None:
        self._counters[_DARK_KEY] = value

    @property
    def active_time_us(self) -> float:
        # the executor reads this once per charged step; keep it O(1)
        return self._counters[_ACTIVE_KEY]

    @property
    def useful_time_us(self) -> float:
        """Application + I/O time (before waste attribution)."""
        c = self._counters
        return c[_TIME_KEY[APP]] + c[_TIME_KEY[IO]]

    @property
    def overhead_time_us(self) -> float:
        return self._counters[_TIME_KEY[OVERHEAD]]

    @property
    def boot_time_us(self) -> float:
        return self._counters[_TIME_KEY[BOOT]]


@dataclass
class Metrics:
    """Final record for one (application x runtime x environment) run."""

    runtime: str
    app: str
    completed: bool
    total_time_us: float          # active + dark (wall clock)
    active_time_us: float
    dark_time_us: float
    app_time_us: float            # APP+IO time across all attempts
    overhead_time_us: float       # OVERHEAD time across all attempts
    boot_time_us: float
    power_failures: int
    task_commits: int
    io_executions: int
    io_reexecutions: int
    io_skips: int
    dma_executions: int
    dma_reexecutions: int
    dma_skips: int
    energy_uj: float
    energy_by_category: Dict[str, float] = field(default_factory=dict)
    memory_footprint: Dict[str, int] = field(default_factory=dict)
    text_proxy: int = 0           # transformed-program statement count

    def waste_against(self, continuous_useful_us: float) -> float:
        """Wasted work versus a continuous-power useful time.

        The Figure 7/10 stacking: total active = useful (continuous) +
        overhead + wasted, where boot time counts as waste (it exists
        only because of failures).
        """
        wasted = self.active_time_us - continuous_useful_us - self.overhead_time_us
        return max(0.0, wasted)

    def as_row(self) -> Dict[str, object]:
        """Flat dict for table rendering."""
        return {
            "runtime": self.runtime,
            "app": self.app,
            "completed": self.completed,
            "total_ms": self.total_time_us / 1000.0,
            "active_ms": self.active_time_us / 1000.0,
            "overhead_ms": self.overhead_time_us / 1000.0,
            "failures": self.power_failures,
            "io_reexec": self.io_reexecutions,
            "energy_uj": self.energy_uj,
        }
