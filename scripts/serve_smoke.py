#!/usr/bin/env python
"""End-to-end smoke of the campaign service's resume contract.

The full dance, against real processes:

1. start the serve daemon;
2. submit a check campaign over HTTP;
3. kill the daemon mid-flight (SIGTERM, while the job is running);
4. start a fresh daemon on the same service root — the dead job must
   surface as ``interrupted``;
5. resubmit the same campaign — it must resume from the checkpoint
   and the store rather than redoing finished work;
6. assert the final report is identical (modulo wall-clock fields) to
   an uninterrupted run of the same campaign in a clean service root.

Exit status 0 only if every step holds.  Used by the CI ``serve-smoke``
job; runs locally with ``python scripts/serve_smoke.py``.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CAMPAIGN = {
    "app": "uni_temp", "runtime": "easeio", "mode": "random",
    "runs": 300, "workers": 1, "seed": 23, "shrink": False,
}
VOLATILE = ("elapsed_s", "telemetry")


def comparable(report):
    """A report stripped of wall-clock and service-root-local fields."""
    doc = {k: v for k, v in report.items() if k not in VOLATILE}
    doc["config"] = {
        k: v for k, v in report.get("config", {}).items()
        if k not in ("store_dir", "checkpoint")
    }
    return doc


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO, "src"), env.get("PYTHONPATH")) if p
    )
    return env


def start_daemon(root):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "start",
         "--root", root, "--port", "0"],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, cwd=REPO,
    )
    line = proc.stdout.readline()
    if "listening on " not in line:
        proc.kill()
        raise SystemExit(f"daemon failed to start: {line!r}")
    url = line.split("listening on ")[1].split(" ")[0]
    return proc, url


def main() -> int:
    sys.path.insert(0, os.path.join(REPO, "src"))
    from repro.serve.daemon import ServeClient

    tmp = tempfile.mkdtemp(prefix="serve-smoke-")
    root = os.path.join(tmp, "serve")

    print("== 1. daemon up, campaign submitted over HTTP")
    proc, url = start_daemon(root)
    client = ServeClient(url)
    job = client.submit("check", CAMPAIGN)
    print(f"   job {job['id']} campaign {job['campaign'][:12]}")

    print("== 2. kill the daemon mid-flight")
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        status = client.status(job["id"])
        if status["state"] in ("done", "failed"):
            raise SystemExit(
                f"campaign outran the kill ({status['state']}); "
                "raise CAMPAIGN['runs']"
            )
        if status["progress"].get("done", 0) >= 10:
            break
        time.sleep(0.05)
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=60) == 0, "daemon did not exit cleanly"
    print(f"   killed after {status['progress'].get('done', 0)} runs")

    print("== 3. fresh daemon on the same root: job is interrupted")
    proc, url = start_daemon(root)
    client = ServeClient(url)
    revived = client.status(job["id"])
    assert revived["state"] in ("interrupted", "cancelled"), revived["state"]

    print("== 4. resubmit: resumes from checkpoint + store")
    again = client.submit("check", CAMPAIGN)
    assert again["campaign"] == job["campaign"], "campaign identity changed"
    final = client.wait(again["id"], timeout_s=600)
    assert final["state"] == "done", final
    resumed = client.results(again["id"])
    counters = resumed["telemetry"]["counters"]
    reused = (counters.get("serve.checkpoint_restored", 0)
              + counters.get("serve.store_hits", 0))
    print(f"   {reused} of {resumed['n_runs']} runs reused, "
          f"{counters.get('serve.executed', 0)} simulated fresh")
    assert reused > 0, "no finished work was reused after the kill"
    proc.send_signal(signal.SIGTERM)
    proc.wait(timeout=60)

    print("== 5. uninterrupted reference run in a clean root")
    proc, url = start_daemon(os.path.join(tmp, "serve-ref"))
    client = ServeClient(url)
    ref_job = client.submit("check", CAMPAIGN)
    assert client.wait(ref_job["id"], timeout_s=600)["state"] == "done"
    reference = client.results(ref_job["id"])
    proc.send_signal(signal.SIGTERM)
    proc.wait(timeout=60)

    a = comparable(resumed)
    b = comparable(reference)
    if a != b:
        diff = {k for k in a if a.get(k) != b.get(k)}
        print(f"MISMATCH in fields: {sorted(diff)}")
        print(json.dumps({k: [a.get(k), b.get(k)] for k in diff}, indent=2))
        return 1
    print("== OK: interrupted+resumed report == uninterrupted report")
    return 0


if __name__ == "__main__":
    sys.exit(main())
