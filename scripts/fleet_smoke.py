#!/usr/bin/env python
"""Multi-node smoke of the fleet's kill/resume contract.

The full dance, against real processes:

1. start the serve daemon (SQLite store backend, short lease TTL);
2. start three fleet worker processes pulling shard leases over HTTP;
3. submit a check campaign with ``--fleet`` routing;
4. SIGKILL one worker while it holds a lease — its shard must expire
   and requeue (typed ``expire``/``requeue`` events in the job log);
5. SIGTERM the daemon mid-flight, restart it on the same port, and
   resubmit: the surviving workers reconnect through their backoff
   loop and the campaign resumes from the checkpoint + store;
6. assert zero lost and zero double-counted units, and that the final
   report is identical (modulo wall-clock fields) to an inline
   single-process run of the same campaign.

Exit status 0 only if every step holds.  Used by the CI ``fleet-smoke``
job; runs locally with ``python scripts/fleet_smoke.py``.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CAMPAIGN = {
    "app": "fir", "runtime": "easeio", "mode": "random",
    "runs": 200, "workers": 1, "seed": 11, "shrink": False,
}
VOLATILE = ("elapsed_s", "telemetry")


def comparable(report):
    """A report stripped of wall-clock and service-root-local fields."""
    doc = {k: v for k, v in report.items() if k not in VOLATILE}
    doc["config"] = {
        k: v for k, v in report.get("config", {}).items()
        if k not in ("store_dir", "store_backend", "checkpoint")
    }
    return doc


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO, "src"), env.get("PYTHONPATH")) if p
    )
    return env


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def start_daemon(root, port):
    # a fixed port, unlike serve_smoke: workers must find the restarted
    # daemon at the same address to reconnect through their backoff loop
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "start",
         "--root", root, "--port", str(port),
         "--store-backend", "sqlite", "--fleet-ttl", "2", "--drain", "5"],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, cwd=REPO,
    )
    line = proc.stdout.readline()
    if "listening on " not in line:
        proc.kill()
        raise SystemExit(f"daemon failed to start: {line!r}")
    url = line.split("listening on ")[1].split(" ")[0]
    return proc, url


def start_worker(url):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "fleet", "worker",
         "--daemon", url, "--poll", "0.1", "--quiet"],
        env=_env(), stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        cwd=REPO,
    )


def wait_for(predicate, timeout_s, what):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.1)
    raise SystemExit(f"timed out after {timeout_s}s waiting for {what}")


def main() -> int:
    sys.path.insert(0, os.path.join(REPO, "src"))
    from repro.check import CampaignConfig, run_campaign
    from repro.serve.daemon import ServeClient

    tmp = tempfile.mkdtemp(prefix="fleet-smoke-")
    root = os.path.join(tmp, "serve")
    port = _free_port()
    workers = []
    daemon = None
    try:
        print("== 1. daemon (sqlite store) + 3 fleet workers")
        daemon, url = start_daemon(root, port)
        client = ServeClient(url)
        workers = [start_worker(url) for _ in range(3)]

        print("== 2. fleet campaign submitted over HTTP")
        job = client.submit("check", CAMPAIGN, fleet=True)
        print(f"   job {job['id']} campaign {job['campaign'][:12]}")

        print("== 3. SIGKILL one worker while it holds a lease")
        wait_for(
            lambda: client.fleet_status().get("leases_active", 0) >= 3
            and client.status(job["id"])["progress"].get("done", 0) >= 5,
            60, "all three workers to hold leases",
        )
        state = client.status(job["id"])["state"]
        if state in ("done", "failed"):
            raise SystemExit(
                f"campaign outran the kill ({state}); raise CAMPAIGN['runs']"
            )
        workers[0].send_signal(signal.SIGKILL)
        workers[0].wait(timeout=30)

        print("== 4. dead worker's shard expires and requeues")
        wait_for(
            lambda: {"expire", "requeue"}.issubset(
                e["type"] for e in client.events(job["id"])["events"]
            ),
            30, "expire/requeue events (lease TTL is 2s)",
        )
        stats = client.fleet_status()
        print(f"   expired={stats.get('expired')} "
              f"requeued_units={stats.get('requeued_units')}")

        print("== 5. restart the daemon mid-flight; resubmit")
        daemon.send_signal(signal.SIGTERM)
        assert daemon.wait(timeout=60) == 0, "daemon did not exit cleanly"
        daemon, url = start_daemon(root, port)
        client = ServeClient(url)
        again = client.submit("check", CAMPAIGN, fleet=True)
        assert again["campaign"] == job["campaign"], "campaign identity changed"

        # the two surviving worker processes reconnect on their own
        final = client.wait(again["id"], timeout_s=600)
        assert final["state"] == "done", final
        resumed = client.results(again["id"])
        counters = resumed["telemetry"]["counters"]
        reused = (counters.get("serve.checkpoint_restored", 0)
                  + counters.get("serve.store_hits", 0))
        print(f"   {reused} of {resumed['n_runs']} runs reused after the "
              f"restart, {counters.get('serve.executed', 0)} re-executed")
        assert reused > 0, "no finished work was reused after the restart"

        print("== 6. nothing lost, nothing double-counted")
        progress = client.status(again["id"])["progress"]
        assert progress["done"] == progress["total"] == CAMPAIGN["runs"], (
            progress
        )
        assert os.path.exists(os.path.join(root, "store", "store.sqlite3")), (
            "store is not the sqlite backend"
        )

        print("== 7. report must match an inline single-process run")
        inline = run_campaign(CampaignConfig(**CAMPAIGN)).to_json()
        a, b = comparable(resumed), comparable(inline)
        if a != b:
            diff = {k for k in a if a.get(k) != b.get(k)}
            print(f"MISMATCH in fields: {sorted(diff)}")
            print(json.dumps(
                {k: [a.get(k), b.get(k)] for k in diff}, indent=2
            ))
            return 1
        print("== OK: fleet kill/resume report == inline report")
        return 0
    finally:
        for proc in workers:
            if proc.poll() is None:
                proc.terminate()
        for proc in workers:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
        if daemon is not None and daemon.poll() is None:
            daemon.send_signal(signal.SIGTERM)
            try:
                daemon.wait(timeout=30)
            except subprocess.TimeoutExpired:
                daemon.kill()


if __name__ == "__main__":
    sys.exit(main())
